//! A hermetic HTTP/1.1 server over a [`RuleGroupIndex`].
//!
//! Plain `std::net::TcpListener`, a fixed worker pool fed over a
//! `farmer_support::thread` channel, one request per connection
//! (`Connection: close`), and graceful shutdown on a stop flag: the
//! acceptor stops taking new connections, drains its backlog to the
//! workers, and every connection already established gets a full
//! response before the pool exits.

use crate::index::RuleGroupIndex;
use farmer_support::json::{Json, ObjBuilder};
use farmer_support::thread::{channel, Mutex, Receiver, Sender};
use farmer_support::trace::{prometheus_text, HistId, RingTracer, TraceSink};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Latency histograms exported at `/metrics` (names feed PR 4's
/// Prometheus text exporter, which renders `farmer_<name>_ns`).
const HIST_NAMES: &[&str] = &[
    "serve_request",
    "serve_classify",
    "serve_query",
    "serve_healthz",
    "serve_metrics",
];
const H_REQUEST: HistId = HistId(0);
const H_CLASSIFY: HistId = HistId(1);
const H_QUERY: HistId = HistId(2);
const H_HEALTHZ: HistId = HistId(3);
const H_METRICS: HistId = HistId(4);

/// How the server binds and scales.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the
    /// actual port is on [`ServerHandle::addr`]).
    pub addr: String,
    /// Fixed worker-pool size (clamped to ≥ 1).
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
        }
    }
}

/// A running server: the bound address plus the shutdown control.
/// Dropping the handle shuts the server down gracefully.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    served: Arc<AtomicU64>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections fully handled so far (monotonic; useful for idle
    /// detection and smoke assertions).
    pub fn requests_served(&self) -> u64 {
        self.served.load(Ordering::Relaxed)
    }

    /// Stops accepting, drains every connection already established,
    /// and joins the pool. Idempotent via [`Drop`].
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept() so the acceptor observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.shutdown_inner();
        }
    }
}

/// Binds and starts serving `index` in background threads.
pub fn start(index: Arc<RuleGroupIndex>, config: &ServeConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let workers = config.workers.max(1);
    let stop = Arc::new(AtomicBool::new(false));
    let served = Arc::new(AtomicU64::new(0));
    // Lane 0 is the acceptor's (unused); worker w records on lane w+1.
    let tracer = Arc::new(RingTracer::new(&[], HIST_NAMES, workers + 1, 1));

    let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = channel();
    let rx = Arc::new(Mutex::new(rx));

    let mut pool = Vec::with_capacity(workers);
    for w in 0..workers {
        let rx = Arc::clone(&rx);
        let index = Arc::clone(&index);
        let tracer = Arc::clone(&tracer);
        let served = Arc::clone(&served);
        pool.push(std::thread::spawn(move || loop {
            // Hold the lock only for the receive itself; Err means the
            // acceptor dropped the sender and the queue is empty.
            let conn = { rx.lock().recv() };
            match conn {
                Ok(stream) => {
                    handle_connection(stream, &index, &tracer, w + 1);
                    served.fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => break,
            }
        }));
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            // Graceful drain: connections that reached the listener's
            // backlog before the stop flag still get served.
            let _ = listener.set_nonblocking(true);
            while let Ok((stream, _)) = listener.accept() {
                let _ = stream.set_nonblocking(false);
                if tx.send(stream).is_err() {
                    break;
                }
            }
            // Dropping the sender lets the workers finish the queue
            // and exit.
        })
    };

    Ok(ServerHandle {
        addr,
        stop,
        served,
        acceptor: Some(acceptor),
        workers: pool,
    })
}

/// One parsed request: method, decoded path, decoded query pairs.
struct Request {
    method: String,
    path: String,
    query: Vec<(String, String)>,
}

impl Request {
    fn param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn handle_connection(stream: TcpStream, index: &RuleGroupIndex, tracer: &RingTracer, lane: usize) {
    // Timeouts keep a stalled peer from wedging a worker forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let Some(req) = parse_request(&mut reader) else {
        return; // unreadable request line: nothing to answer
    };
    let (status, content_type, body, hist) = respond(&req, index, tracer);
    let stream = reader.get_mut();
    let _ = write_response(stream, status, content_type, &body);
    let _ = stream.flush();
    let ns = started.elapsed().as_nanos() as u64;
    tracer.duration_ns(lane, H_REQUEST, ns);
    if let Some(h) = hist {
        tracer.duration_ns(lane, h, ns);
    }
}

/// Reads the request line and headers (discarded — every endpoint is a
/// bodyless GET). `None` when the peer sent nothing parseable.
fn parse_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    reader.read_line(&mut line).ok()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => break,
            Ok(_) if header == "\r\n" || header == "\n" => break,
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    Some(Request {
        method,
        path: percent_decode(path),
        query,
    })
}

/// Minimal `%XX` + `+` decoding for query components.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() => {
                let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
                match hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Routes one request. Returns status, content type, body, and the
/// per-endpoint histogram to record into.
fn respond(
    req: &Request,
    index: &RuleGroupIndex,
    tracer: &RingTracer,
) -> (u16, &'static str, String, Option<HistId>) {
    if req.method != "GET" {
        return (
            405,
            "application/json",
            error_body("only GET is supported"),
            None,
        );
    }
    match req.path.as_str() {
        "/healthz" => {
            let body = ObjBuilder::new()
                .field("status", "ok")
                .field("groups", index.groups().len())
                .field("items", index.meta().n_items())
                .field("classes", index.meta().n_classes())
                .build()
                .to_string();
            (200, "application/json", body, Some(H_HEALTHZ))
        }
        "/metrics" => {
            let text = prometheus_text(&tracer.drain());
            (200, "text/plain; version=0.0.4", text, Some(H_METRICS))
        }
        "/classify" => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let p = index.classify(&sample);
                let mut obj = ObjBuilder::new()
                    .field("class", p.class)
                    .field(
                        "class_name",
                        index.meta().class_names[p.class as usize].as_str(),
                    )
                    .field("default", p.group.is_none());
                obj = match p.group {
                    Some(gi) => {
                        let g = &index.groups()[gi as usize];
                        obj.field("group", gi)
                            .field("conf", g.confidence())
                            .field("sup", g.sup)
                    }
                    None => obj.field("group", Json::Null),
                };
                let body = obj
                    .field("unknown_items", str_array(&unknown))
                    .build()
                    .to_string();
                (200, "application/json", body, Some(H_CLASSIFY))
            }
            Err(e) => (400, "application/json", e, Some(H_CLASSIFY)),
        },
        "/query" => match sample_of(req, index) {
            Ok((sample, unknown)) => {
                let class_filter = match req.param("class").map(str::parse::<u32>) {
                    None => None,
                    Some(Ok(c)) if (c as usize) < index.meta().n_classes() => Some(c),
                    Some(_) => {
                        return (
                            400,
                            "application/json",
                            error_body("class must be a valid class label"),
                            Some(H_QUERY),
                        )
                    }
                };
                let limit = req
                    .param("limit")
                    .and_then(|l| l.parse::<usize>().ok())
                    .unwrap_or(20);
                let mut matched = index.matches(&sample);
                if let Some(c) = class_filter {
                    matched.retain(|&gi| index.groups()[gi as usize].class == c);
                }
                let total = matched.len();
                matched.truncate(limit);
                let groups: Vec<Json> = matched.iter().map(|&gi| group_json(index, gi)).collect();
                let body = ObjBuilder::new()
                    .field("total", total)
                    .field("returned", groups.len())
                    .field("groups", Json::Arr(groups))
                    .field("unknown_items", str_array(&unknown))
                    .build()
                    .to_string();
                (200, "application/json", body, Some(H_QUERY))
            }
            Err(e) => (400, "application/json", e, Some(H_QUERY)),
        },
        _ => (
            404,
            "application/json",
            error_body("no such endpoint"),
            None,
        ),
    }
}

/// Extracts the `items` parameter as a sample, or a 400 body.
fn sample_of(
    req: &Request,
    index: &RuleGroupIndex,
) -> Result<(rowset::IdList, Vec<String>), String> {
    let Some(items) = req.param("items") else {
        return Err(error_body("missing items parameter (items=a,b,c)"));
    };
    let tokens = items.split(',').map(str::trim).filter(|t| !t.is_empty());
    Ok(index.parse_sample(tokens))
}

fn group_json(index: &RuleGroupIndex, gi: u32) -> Json {
    let g = &index.groups()[gi as usize];
    let upper: Vec<Json> = g
        .upper
        .iter()
        .map(|i| Json::Str(index.meta().item_names[i as usize].clone()))
        .collect();
    ObjBuilder::new()
        .field("group", gi)
        .field("class", g.class)
        .field(
            "class_name",
            index.meta().class_names[g.class as usize].as_str(),
        )
        .field("upper", Json::Arr(upper))
        .field("n_lower", g.lower.len())
        .field("sup", g.sup)
        .field("conf", g.confidence())
        .field("chi2", g.chi_square())
        .build()
}

fn str_array(items: &[String]) -> Json {
    Json::Arr(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn error_body(msg: &str) -> String {
    ObjBuilder::new().field("error", msg).build().to_string()
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

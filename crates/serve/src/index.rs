//! The in-memory rule-group index: inverted item → group posting
//! lists, per-class partitions, and a precomputed classification
//! ranking, built once from a loaded artifact.

use farmer_classify::{irg_rule, rule_cmp, ScoredRule, IRG_FINGERPRINT_THETA};
use farmer_core::RuleGroup;
use farmer_dataset::ClassLabel;
use farmer_store::{Artifact, ArtifactMeta};
use rowset::IdList;

/// The serving layer's answer to `classify(sample)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Prediction {
    /// The predicted class.
    pub class: ClassLabel,
    /// The winning group (an index into [`RuleGroupIndex::groups`]),
    /// or `None` when no group matched and the majority-class fallback
    /// answered.
    pub group: Option<u32>,
}

/// An immutable index over the rule groups of one artifact.
///
/// `match` runs over inverted posting lists: for each item the sample
/// carries, bump a counter on every group whose upper bound contains
/// that item; a group matches when its counter reaches the fractional
/// containment threshold `⌈θ·|upper|⌉`. Work is proportional to the
/// posting lists the sample actually touches — groups sharing no item
/// with the sample are never looked at, unlike a linear scan.
///
/// `classify` is the first-matching-rule prediction of
/// `farmer_classify::RuleListClassifier::from_ranked` over the same
/// groups: the matching group whose derived rule ranks first under
/// [`farmer_classify::rule_cmp`] wins; the artifact's majority class
/// answers when nothing matches. The equivalence is pinned by property
/// tests in this crate.
pub struct RuleGroupIndex {
    meta: ArtifactMeta,
    groups: Vec<RuleGroup>,
    /// `irg_rule(groups[g], theta)`, parallel to `groups`.
    rules: Vec<ScoredRule>,
    theta: f64,
    /// Per group: counter value at which the fractional threshold is
    /// met. `u32::MAX` for empty upper bounds (they never match).
    thresholds: Vec<u32>,
    /// `postings[item]` = sorted ids of groups whose upper bound
    /// contains `item`.
    postings: Vec<Vec<u32>>,
    /// `by_class[c]` = ids of groups predicting class `c`, in
    /// classification-rank order.
    by_class: Vec<Vec<u32>>,
    /// `rank[g]` = position of group `g`'s rule in the canonical
    /// classification order (lower wins).
    rank: Vec<u32>,
}

impl RuleGroupIndex {
    /// Builds the index with an explicit fractional containment
    /// threshold `theta ∈ (0, 1]`.
    pub fn build(artifact: Artifact, theta: f64) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let Artifact { meta, groups } = artifact;
        let rules: Vec<ScoredRule> = groups.iter().map(|g| irg_rule(g, theta)).collect();

        let mut postings = vec![Vec::new(); meta.n_items()];
        let mut thresholds = Vec::with_capacity(groups.len());
        for (gi, g) in groups.iter().enumerate() {
            for item in g.upper.iter() {
                postings[item as usize].push(gi as u32);
            }
            thresholds.push(match g.upper.len() {
                0 => u32::MAX,
                len => smallest_meeting(theta, len),
            });
        }

        // Argsort group ids by their rules' canonical order; ties are
        // impossible for distinct groups of a well-formed artifact, but
        // the index fall-back keeps the order total regardless.
        let mut order: Vec<u32> = (0..groups.len() as u32).collect();
        order.sort_by(|&a, &b| rule_cmp(&rules[a as usize], &rules[b as usize]).then(a.cmp(&b)));
        let mut rank = vec![0u32; groups.len()];
        for (pos, &gi) in order.iter().enumerate() {
            rank[gi as usize] = pos as u32;
        }
        let mut by_class = vec![Vec::new(); meta.n_classes()];
        for &gi in &order {
            by_class[groups[gi as usize].class as usize].push(gi);
        }

        RuleGroupIndex {
            meta,
            groups,
            rules,
            theta,
            thresholds,
            postings,
            by_class,
            rank,
        }
    }

    /// Builds the index with the offline IRG classifier's threshold
    /// ([`IRG_FINGERPRINT_THETA`]).
    pub fn from_artifact(artifact: Artifact) -> Self {
        Self::build(artifact, IRG_FINGERPRINT_THETA)
    }

    /// The artifact's dataset metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The indexed groups, in artifact order.
    pub fn groups(&self) -> &[RuleGroup] {
        &self.groups
    }

    /// The derived classification rules, parallel to [`groups`](Self::groups).
    pub fn rules(&self) -> &[ScoredRule] {
        &self.rules
    }

    /// The fractional containment threshold the index was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Ids of the groups predicting `class`, best rank first.
    pub fn groups_for_class(&self, class: ClassLabel) -> &[u32] {
        self.by_class
            .get(class as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All groups covering `sample` — every group `g` with
    /// `|upper(g) ∩ sample| ≥ θ·|upper(g)|` — as sorted group ids.
    /// Equal, by the property tests, to filtering all groups with
    /// `ScoredRule::matches`.
    pub fn matches(&self, sample: &IdList) -> Vec<u32> {
        let mut counts = vec![0u32; self.groups.len()];
        let mut touched = Vec::new();
        for item in sample.iter() {
            let Some(posting) = self.postings.get(item as usize) else {
                continue; // item unknown to the artifact's dictionary
            };
            for &gi in posting {
                if counts[gi as usize] == 0 {
                    touched.push(gi);
                }
                counts[gi as usize] += 1;
            }
        }
        touched.retain(|&gi| counts[gi as usize] >= self.thresholds[gi as usize]);
        touched.sort_unstable();
        touched
    }

    /// Classifies `sample`: the best-ranked covering group's class, or
    /// the artifact's majority class when nothing covers it.
    pub fn classify(&self, sample: &IdList) -> Prediction {
        let best = self
            .matches(sample)
            .into_iter()
            .min_by_key(|&gi| self.rank[gi as usize]);
        match best {
            Some(gi) => Prediction {
                class: self.groups[gi as usize].class,
                group: Some(gi),
            },
            None => Prediction {
                class: self.meta.majority_class(),
                group: None,
            },
        }
    }

    /// Resolves item tokens to a sample [`IdList`]. Each token is
    /// looked up as an item name first, then as a numeric id; unknown
    /// tokens are returned (they cannot affect any match — the index
    /// only counts items in the dictionary).
    pub fn parse_sample<'t>(
        &self,
        tokens: impl IntoIterator<Item = &'t str>,
    ) -> (IdList, Vec<String>) {
        let mut ids = Vec::new();
        let mut unknown = Vec::new();
        for tok in tokens {
            if let Some(id) = self.meta.item_by_name(tok) {
                ids.push(id);
            } else if let Ok(id) = tok.parse::<u32>() {
                if (id as usize) < self.meta.n_items() {
                    ids.push(id);
                } else {
                    unknown.push(tok.to_string());
                }
            } else {
                unknown.push(tok.to_string());
            }
        }
        (IdList::from_iter(ids), unknown)
    }
}

/// The smallest count `k` with `k ≥ θ·len` under the exact `f64`
/// comparison `ScoredRule::matches` performs — so the counting index
/// and the fractional matcher agree even when `θ·len` sits on a
/// rounding boundary.
pub(crate) fn smallest_meeting(theta: f64, len: usize) -> u32 {
    (0..=len as u32)
        .find(|&k| k as f64 >= theta * len as f64)
        .unwrap_or(len as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{canonical_sort, Farmer, MiningParams};
    use farmer_dataset::DatasetBuilder;

    fn small_artifact() -> Artifact {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 1, 2], 0);
        b.add_row([0, 1], 0);
        b.add_row([1, 2, 3], 1);
        b.add_row([0, 3], 1);
        let d = b.build();
        let mut groups = Vec::new();
        for class in 0..2 {
            groups.extend(
                Farmer::new(MiningParams::new(class).min_sup(1))
                    .mine(&d)
                    .groups,
            );
        }
        canonical_sort(&mut groups);
        Artifact {
            meta: ArtifactMeta::from_dataset(&d),
            groups,
        }
    }

    #[test]
    fn matches_equals_linear_scan() {
        let idx = RuleGroupIndex::from_artifact(small_artifact());
        for sample in [vec![], vec![0], vec![0, 1], vec![0, 1, 2, 3], vec![3]] {
            let s = IdList::from_iter(sample.iter().copied());
            let naive: Vec<u32> = idx
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.matches(&s))
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(idx.matches(&s), naive, "sample {sample:?}");
        }
    }

    #[test]
    fn classify_falls_back_to_majority() {
        let idx = RuleGroupIndex::from_artifact(small_artifact());
        let p = idx.classify(&IdList::new());
        assert_eq!(p.group, None);
        assert_eq!(p.class, idx.meta().majority_class());
    }

    #[test]
    fn thresholds_honor_exact_fraction_boundaries() {
        // θ = 0.5 over 4 items: 2 of 4 meets 0.5·4 exactly.
        assert_eq!(smallest_meeting(0.5, 4), 2);
        // θ = 0.8 over 5 items: 4 = 0.8·5 exactly.
        assert_eq!(smallest_meeting(0.8, 5), 4);
        // θ = 0.8 over 4 items: 3.2 rounds up to 4.
        assert_eq!(smallest_meeting(0.8, 4), 4);
        assert_eq!(smallest_meeting(1.0, 3), 3);
    }

    #[test]
    fn parse_sample_names_ids_and_unknowns() {
        let art = small_artifact();
        let name2 = art.meta.item_names[2].clone();
        let idx = RuleGroupIndex::from_artifact(art);
        let (ids, unknown) = idx.parse_sample([name2.as_str(), "0", "nope", "99"]);
        assert_eq!(ids, IdList::from_iter([0, 2]));
        assert_eq!(unknown, vec!["nope".to_string(), "99".to_string()]);
    }

    #[test]
    fn class_partitions_cover_all_groups() {
        let idx = RuleGroupIndex::from_artifact(small_artifact());
        let total: usize = (0..2).map(|c| idx.groups_for_class(c).len()).sum();
        assert_eq!(total, idx.groups().len());
        for c in 0..2u32 {
            assert!(idx
                .groups_for_class(c)
                .iter()
                .all(|&gi| idx.groups()[gi as usize].class == c));
        }
    }
}

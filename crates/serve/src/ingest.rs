//! The ingest hook: how a streaming pipeline plugs into the server.
//!
//! The serving crate deliberately knows nothing about journals or
//! remining — that lives in `farmer-pipeline`, which depends on this
//! crate (not the other way around). When a pipeline is attached
//! ([`crate::ServeConfig::ingest`]), the server gains:
//!
//! - `POST /v1/admin/ingest` — bearer-authenticated row submission,
//!   forwarded to [`IngestHook::ingest`] and journaled there;
//! - a `pipeline` object in `GET /v1/admin/stats`
//!   ([`IngestHook::stats`]);
//! - extra `farmer_pipeline_*` families appended to `GET /v1/metrics`
//!   ([`IngestHook::metrics_text`]);
//! - pipeline liveness in the CLI's `--idle-exit-ms` loop
//!   ([`IngestHook::activity`]), so a server busy remining journal
//!   rows is not "idle" just because no HTTP traffic arrived.

use farmer_support::json::Json;

/// One ingested row: its item ids (strictly ascending) and class
/// label, both indices into the *base dataset's* dictionaries.
pub type IngestRow = (Vec<u32>, u32);

/// The surface a streaming pipeline exposes to the server.
///
/// Implementations must be cheap to call concurrently from worker
/// threads; [`ingest`](Self::ingest) may block briefly on the journal
/// write but must not wait for a remine.
pub trait IngestHook: Send + Sync {
    /// Validates `rows` against the base dataset and appends them to
    /// the journal. All-or-nothing: on `Err` no row was journaled.
    /// Returns the number of rows accepted.
    fn ingest(&self, rows: &[IngestRow]) -> Result<usize, String>;

    /// A monotonic activity counter, bumped by every journaled row and
    /// every publish. Pollers (the CLI idle-exit loop) treat a change
    /// as "the server did something".
    fn activity(&self) -> u64;

    /// The pipeline's live stats as a JSON object, embedded under
    /// `"pipeline"` in `GET /v1/admin/stats`.
    fn stats(&self) -> Json;

    /// Extra Prometheus exposition text (complete `# TYPE`d families,
    /// newline-terminated) appended to `GET /v1/metrics`.
    fn metrics_text(&self) -> String;
}

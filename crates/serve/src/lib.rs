//! Serving mined rule groups: index a stored `.fgi` artifact in
//! memory and answer classification and query traffic over HTTP.
//!
//! This is the online half of the store→index→serve pipeline
//! (`farmer-store` is the offline half). The layers, bottom up:
//!
//! - [`RuleGroupIndex`] — inverted item→group posting lists with
//!   per-class partitions. `matches(sample)` touches only the posting
//!   lists of the items the sample carries (no linear scan over
//!   groups); `classify(sample)` reproduces exactly what
//!   `farmer_classify::RuleListClassifier::from_ranked` would predict
//!   from the same artifact, falling back to the majority class.
//! - [`ShardedIndex`] — the same postings hash-partitioned across
//!   shards (group `gi` lives in shard `gi % S` under a local id),
//!   built in parallel and queried scatter/gather; answer-for-answer
//!   equivalent to the monolithic index by property test.
//! - [`ArtifactHandle`] — the hot-swappable pointer the server
//!   actually holds: every request snapshots the current index, and a
//!   reload (SIGHUP via the CLI, or `POST /v1/admin/reload`) swaps
//!   artifacts atomically with zero dropped requests.
//! - [`start`] / [`ServerHandle`] — a hermetic HTTP/1.1 server on
//!   `std::net::TcpListener` with a fixed worker pool and bounded
//!   admission (`503` + `Retry-After` past `max_inflight`). Endpoints
//!   live under `/v1/` (`/v1/classify` GET + batch POST, `/v1/query`,
//!   `/v1/healthz`, `/v1/metrics`, `/v1/admin/reload`,
//!   `/v1/admin/stats`); the pre-redesign unversioned paths answer as
//!   deprecated aliases. Shutdown is graceful: the stop flag halts
//!   accepting, the backlog drains, and in-flight requests complete.
//! - [`http_get`] / [`http_post`] — the tiny blocking client used by
//!   the `fgi-client` binary, the end-to-end smoke in
//!   `scripts/verify.sh`, and the concurrency tests.
//!
//! Every request carries an `X-Request-Id`, feeds the RED counter and
//! gauge families on `/v1/metrics`, and can be logged as structured
//! JSON lines ([`ServeConfig::log_out`]) — see the `http` module docs
//! for the observability surface and [`watch`] for the polling
//! dashboard behind `fgi-client watch`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod handle;
mod http;
mod index;
mod ingest;
mod obs;
mod shard;
pub mod watch;

pub use client::{http_get, http_get_auth, http_post, HttpResponse};
pub use handle::ArtifactHandle;
pub use http::{start, ServeConfig, ServerHandle};
pub use index::{Prediction, RuleGroupIndex};
pub use ingest::{IngestHook, IngestRow};
pub use shard::ShardedIndex;

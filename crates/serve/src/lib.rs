//! Serving mined rule groups: index a stored `.fgi` artifact in
//! memory and answer classification and query traffic over HTTP.
//!
//! This is the online half of the store→index→serve pipeline
//! (`farmer-store` is the offline half). Three layers:
//!
//! - [`RuleGroupIndex`] — inverted item→group posting lists with
//!   per-class partitions. `matches(sample)` touches only the posting
//!   lists of the items the sample carries (no linear scan over
//!   groups); `classify(sample)` reproduces exactly what
//!   `farmer_classify::RuleListClassifier::from_ranked` would predict
//!   from the same artifact, falling back to the majority class.
//! - [`start`] / [`ServerHandle`] — a hermetic HTTP/1.1 server on
//!   `std::net::TcpListener` with a fixed worker pool: `GET /classify`,
//!   `/query`, `/healthz`, and `/metrics` (request latency histograms
//!   in Prometheus text format, via the `farmer_support::trace`
//!   exporter). Shutdown is graceful: the stop flag halts accepting,
//!   the backlog drains, and in-flight requests complete.
//! - [`http_get`] — the tiny blocking client used by the `fgi-client`
//!   binary, the end-to-end smoke in `scripts/verify.sh`, and the
//!   concurrency tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod http;
mod index;

pub use client::{http_get, HttpResponse};
pub use http::{start, ServeConfig, ServerHandle};
pub use index::{Prediction, RuleGroupIndex};

//! Serving observability: request ids, the RED metric taxonomy, the
//! structured access log, and the slow-request capture ring.
//!
//! Everything here follows the PR 4 `NoopTracer` discipline: when a
//! facility is disabled (no `--log-out`, `--slow-ms 0`) the hot path
//! pays one branch, builds nothing, and takes no lock.
//!
//! # Metric taxonomy
//!
//! The serving tracer carries, beyond the PR 7 latency histograms:
//!
//! - per-endpoint request and error counters
//!   (`serve_<endpoint>_requests` / `serve_<endpoint>_errors`),
//! - whole-server request/error counters and per-status-class
//!   counters (`serve_responses_2xx/4xx/5xx`),
//! - shed / reload / reload-failure counters,
//! - the `serve_inflight` gauge (raised by the acceptor on admission,
//!   lowered by the worker that answers — the cross-lane sum is the
//!   number of accepted-but-unanswered connections).

use farmer_support::json::{Json, ObjBuilder};
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use farmer_support::thread::Mutex;
use farmer_support::trace::{CounterId, GaugeId};
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Counter name table for the serving tracer; indices are the
/// `C_*` ids below plus the per-endpoint pairs at
/// [`endpoint_counters`].
pub(crate) const COUNTER_NAMES: &[&str] = &[
    "serve_requests",
    "serve_errors",
    "serve_classify_requests",
    "serve_classify_errors",
    "serve_query_requests",
    "serve_query_errors",
    "serve_healthz_requests",
    "serve_healthz_errors",
    "serve_metrics_requests",
    "serve_metrics_errors",
    "serve_reload_requests",
    "serve_reload_errors",
    "serve_admin_stats_requests",
    "serve_admin_stats_errors",
    "serve_ingest_requests",
    "serve_ingest_errors",
    "serve_other_requests",
    "serve_other_errors",
    "serve_responses_2xx",
    "serve_responses_4xx",
    "serve_responses_5xx",
    "serve_shed",
    "serve_reloads",
    "serve_reload_failures",
];

pub(crate) const C_REQUESTS: CounterId = CounterId(0);
pub(crate) const C_ERRORS: CounterId = CounterId(1);
pub(crate) const C_2XX: CounterId = CounterId(18);
pub(crate) const C_4XX: CounterId = CounterId(19);
pub(crate) const C_5XX: CounterId = CounterId(20);
pub(crate) const C_SHED: CounterId = CounterId(21);
pub(crate) const C_RELOADS: CounterId = CounterId(22);
pub(crate) const C_RELOAD_FAILURES: CounterId = CounterId(23);

/// Gauge name table for the serving tracer.
pub(crate) const GAUGE_NAMES: &[&str] = &["serve_inflight"];
pub(crate) const G_INFLIGHT: GaugeId = GaugeId(0);

/// The routed endpoint of a request, used to pick its latency
/// histogram and its request/error counter pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Endpoint {
    Classify,
    Query,
    Healthz,
    Metrics,
    Reload,
    AdminStats,
    Ingest,
    /// 404/405/413 and other unrouted traffic.
    Other,
}

/// The `(requests, errors)` counter pair of an endpoint. The pairs
/// start at index 2 of [`COUNTER_NAMES`], in `Endpoint` order.
pub(crate) fn endpoint_counters(ep: Endpoint) -> (CounterId, CounterId) {
    let base = 2 + 2 * ep as u16;
    (CounterId(base), CounterId(base + 1))
}

/// The per-status-class counter of a response, when the class is
/// tracked (2xx/4xx/5xx).
pub(crate) fn status_class_counter(status: u16) -> Option<CounterId> {
    match status / 100 {
        2 => Some(C_2XX),
        4 => Some(C_4XX),
        5 => Some(C_5XX),
        _ => None,
    }
}

/// Longest inbound `X-Request-Id` the server will echo; longer (or
/// non-alphanumeric) ids are replaced with a generated one so logs
/// stay one-line JSON no matter what the peer sends.
const MAX_REQUEST_ID_LEN: usize = 64;

static NEXT_CONNECTION_SEED: AtomicU64 = AtomicU64::new(0);

/// A fresh 16-hex-digit request id. Each connection draws from a
/// `support::rng` generator seeded off a process-global sequence
/// (SplitMix64 inside `seed_from_u64` decorrelates adjacent seeds), so
/// concurrent connections cannot race their way into identical ids.
pub(crate) fn next_request_id() -> String {
    let seq = NEXT_CONNECTION_SEED.fetch_add(1, Ordering::Relaxed);
    let mut rng = StdRng::seed_from_u64(seq ^ ((std::process::id() as u64) << 32));
    format!("{:016x}", rng.next_u64())
}

/// Echoes a client-supplied id when it is sane, otherwise generates
/// one. Sane = nonempty, at most [`MAX_REQUEST_ID_LEN`] chars, all
/// alphanumeric/`-`/`_`.
pub(crate) fn request_id_from(inbound: Option<&str>) -> String {
    match inbound {
        Some(id)
            if !id.is_empty()
                && id.len() <= MAX_REQUEST_ID_LEN
                && id
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_') =>
        {
            id.to_string()
        }
        _ => next_request_id(),
    }
}

/// One access-log line, borrowed from the request that produced it.
pub(crate) struct AccessEntry<'a> {
    /// Nanoseconds since the server started.
    pub ts_ns: u64,
    /// The request id echoed in `X-Request-Id`.
    pub id: &'a str,
    /// Request method (`-` for shed connections, never read).
    pub method: &'a str,
    /// Request path as received (`-` for shed connections).
    pub path: &'a str,
    /// Response status.
    pub status: u16,
    /// Response body bytes written.
    pub bytes: usize,
    /// Wall time from accept-side handling to the flushed response.
    pub latency_ns: u64,
    /// The admission controller shed this connection unread.
    pub shed: bool,
    /// The request hit the reload endpoint.
    pub reload: bool,
}

impl AccessEntry<'_> {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("ts_ns", self.ts_ns)
            .field("id", self.id)
            .field("method", self.method)
            .field("path", self.path)
            .field("status", self.status as u64)
            .field("bytes", self.bytes)
            .field("latency_ns", self.latency_ns)
            .field("shed", self.shed)
            .field("reload", self.reload)
            .build()
    }
}

/// The structured access log: one JSON line per request, written to a
/// file or stderr, or disabled entirely.
///
/// Mirroring `NoopTracer`, the disabled sink is free: [`enabled`]
/// (one `Option` check) gates all entry construction at the call
/// site, so a server without `--log-out` never formats a line or
/// touches the writer lock.
///
/// [`enabled`]: AccessLog::enabled
pub(crate) struct AccessLog {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

impl AccessLog {
    /// Builds the sink from the `--log-out` value: `None` disables,
    /// `-` means stderr, anything else is a path created/truncated.
    pub fn from_target(target: Option<&str>) -> std::io::Result<AccessLog> {
        let sink: Option<Box<dyn Write + Send>> = match target {
            None => None,
            Some("-") => Some(Box::new(std::io::stderr())),
            Some(path) => Some(Box::new(std::fs::File::create(path)?)),
        };
        Ok(AccessLog {
            sink: sink.map(Mutex::new),
        })
    }

    /// `true` iff lines are being written. Call sites use this to skip
    /// building the entry at all.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Appends one line and flushes it (tail -f friendliness beats
    /// buffering at serving rates). Write errors are swallowed: losing
    /// a log line must never fail a request.
    pub fn write(&self, entry: &AccessEntry<'_>) {
        let Some(sink) = &self.sink else {
            return;
        };
        let line = entry.to_json().to_string();
        let mut w = sink.lock();
        let _ = writeln!(w, "{line}");
        let _ = w.flush();
    }
}

/// One captured slow request with its phase breakdown.
#[derive(Clone, Debug)]
pub(crate) struct SlowEntry {
    /// Nanoseconds since the server started.
    pub ts_ns: u64,
    /// Request id.
    pub id: String,
    /// Request method.
    pub method: String,
    /// Request path.
    pub path: String,
    /// Response status.
    pub status: u16,
    /// End-to-end nanoseconds.
    pub total_ns: u64,
    /// Reading and parsing the request.
    pub parse_ns: u64,
    /// Snapshotting the served index.
    pub snapshot_ns: u64,
    /// Routing and computing the answer.
    pub compute_ns: u64,
    /// Writing and flushing the response.
    pub write_ns: u64,
}

impl SlowEntry {
    fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("ts_ns", self.ts_ns)
            .field("id", self.id.as_str())
            .field("method", self.method.as_str())
            .field("path", self.path.as_str())
            .field("status", self.status as u64)
            .field("total_ns", self.total_ns)
            .field("parse_ns", self.parse_ns)
            .field("snapshot_ns", self.snapshot_ns)
            .field("compute_ns", self.compute_ns)
            .field("write_ns", self.write_ns)
            .build()
    }
}

/// How many slow requests the ring retains (oldest evicted first).
pub(crate) const SLOW_RING_CAPACITY: usize = 32;

/// The slow-request capture ring: the last [`SLOW_RING_CAPACITY`]
/// requests whose end-to-end latency met the threshold, with the
/// parse/snapshot/compute/write phase breakdown, served back by
/// `GET /v1/admin/stats`.
///
/// A threshold of 0 ms captures everything (useful in tests and when
/// chasing a regression); the fast path for sub-threshold requests is
/// one comparison, no lock.
pub(crate) struct SlowRing {
    threshold_ns: u64,
    ring: Mutex<VecDeque<SlowEntry>>,
}

impl SlowRing {
    /// A ring capturing requests of `threshold_ms` ms and slower.
    pub fn new(threshold_ms: u64) -> SlowRing {
        SlowRing {
            threshold_ns: threshold_ms.saturating_mul(1_000_000),
            ring: Mutex::new(VecDeque::with_capacity(SLOW_RING_CAPACITY)),
        }
    }

    /// The capture threshold in nanoseconds; call sites compare before
    /// building an entry.
    #[inline]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Captures one entry (the caller has already checked the
    /// threshold), evicting the oldest past capacity.
    pub fn record(&self, entry: SlowEntry) {
        let mut ring = self.ring.lock();
        if ring.len() == SLOW_RING_CAPACITY {
            ring.pop_front();
        }
        ring.push_back(entry);
    }

    /// The retained entries, oldest first, as a JSON array.
    pub fn snapshot_json(&self) -> Json {
        Json::Arr(self.ring.lock().iter().map(SlowEntry::to_json).collect())
    }
}

/// Wall-clock anchor shared by the access log, the slow ring, and the
/// uptime figure in `/v1/admin/stats`.
pub(crate) struct ServerClock {
    start: Instant,
}

impl ServerClock {
    pub fn new() -> ServerClock {
        ServerClock {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since the server started.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_ids_are_hex_and_distinct() {
        let a = next_request_id();
        let b = next_request_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|b| b.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn inbound_request_ids_are_sanitized() {
        assert_eq!(request_id_from(Some("client-id_42")), "client-id_42");
        // empty, oversized, or junk ids are replaced, not echoed
        assert_ne!(request_id_from(Some("")), "");
        let long = "x".repeat(65);
        assert_ne!(request_id_from(Some(&long)), long);
        assert_ne!(request_id_from(Some("a b\nc")), "a b\nc");
        assert_eq!(request_id_from(None).len(), 16);
    }

    #[test]
    fn disabled_access_log_is_inert() {
        let log = AccessLog::from_target(None).unwrap();
        assert!(!log.enabled());
        log.write(&AccessEntry {
            ts_ns: 0,
            id: "x",
            method: "GET",
            path: "/",
            status: 200,
            bytes: 0,
            latency_ns: 0,
            shed: false,
            reload: false,
        });
    }

    #[test]
    fn access_log_writes_one_json_line_per_request() {
        let path = std::env::temp_dir().join(format!("fgi-obs-log-{}.jsonl", std::process::id()));
        let log = AccessLog::from_target(Some(path.to_str().unwrap())).unwrap();
        assert!(log.enabled());
        for i in 0..3u64 {
            log.write(&AccessEntry {
                ts_ns: i,
                id: "deadbeef",
                method: "GET",
                path: "/v1/healthz",
                status: 200,
                bytes: 42,
                latency_ns: 1000 + i,
                shed: false,
                reload: false,
            });
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("id").and_then(Json::as_str), Some("deadbeef"));
            assert_eq!(doc.get("status").and_then(Json::as_u64), Some(200));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn slow_ring_keeps_the_last_k() {
        let ring = SlowRing::new(0);
        assert_eq!(ring.threshold_ns(), 0);
        for i in 0..(SLOW_RING_CAPACITY as u64 + 5) {
            ring.record(SlowEntry {
                ts_ns: i,
                id: format!("{i:016x}"),
                method: "GET".into(),
                path: "/v1/query".into(),
                status: 200,
                total_ns: i,
                parse_ns: 1,
                snapshot_ns: 1,
                compute_ns: 1,
                write_ns: 1,
            });
        }
        let Json::Arr(entries) = ring.snapshot_json() else {
            panic!("snapshot must be an array");
        };
        assert_eq!(entries.len(), SLOW_RING_CAPACITY);
        // oldest entries were evicted: the first retained is ts_ns=5
        assert_eq!(entries[0].get("ts_ns").and_then(Json::as_u64), Some(5));
    }

    #[test]
    fn endpoint_counter_pairs_line_up_with_the_name_table() {
        use Endpoint::*;
        for (ep, name) in [
            (Classify, "classify"),
            (Query, "query"),
            (Healthz, "healthz"),
            (Metrics, "metrics"),
            (Reload, "reload"),
            (AdminStats, "admin_stats"),
            (Ingest, "ingest"),
            (Other, "other"),
        ] {
            let (req, err) = endpoint_counters(ep);
            assert_eq!(
                COUNTER_NAMES[req.0 as usize],
                format!("serve_{name}_requests")
            );
            assert_eq!(
                COUNTER_NAMES[err.0 as usize],
                format!("serve_{name}_errors")
            );
        }
        assert_eq!(COUNTER_NAMES[C_SHED.0 as usize], "serve_shed");
        assert_eq!(COUNTER_NAMES[C_2XX.0 as usize], "serve_responses_2xx");
    }
}

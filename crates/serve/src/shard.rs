//! The sharded serving index: [`RuleGroupIndex`]'s posting lists
//! hash-partitioned across shards, with a scatter/gather merge that
//! reproduces the monolithic index's answers exactly.
//!
//! Shard `s` of `S` owns every group `gi` with `gi % S == s`, under a
//! *local* id `gi / S`. Each shard carries its own item→group posting
//! lists restricted to its groups, so a `matches` pass touches one
//! shard's postings and a counter array sized to that shard's group
//! count — a fraction of the monolithic index's working set — and the
//! gather step merges the per-shard sorted hit lists back into global
//! ids. Classification ranks (`rank`, `by_class`) are computed once,
//! globally, *before* partitioning, so sharding cannot perturb
//! tie-breaking: the parity property tests in `tests/shard_props.rs`
//! pin every answer to [`RuleGroupIndex`].
//!
//! Shards are built in parallel (one thread per shard via
//! `farmer_support::thread::scope`), which is where artifact reloads
//! win: a hot swap rebuilds the index across the pool instead of on
//! one core.

use crate::index::{smallest_meeting, Prediction};
use farmer_classify::{irg_rule, rule_cmp, ScoredRule, IRG_FINGERPRINT_THETA};
use farmer_core::RuleGroup;
use farmer_dataset::ClassLabel;
use farmer_store::{Artifact, ArtifactMeta};
use rowset::IdList;

/// One shard's inverted postings over its slice of the groups.
struct Shard {
    /// `postings[item]` = sorted *local* ids of owned groups whose
    /// upper bound contains `item`.
    postings: Vec<Vec<u32>>,
    /// Number of groups this shard owns.
    n_local: usize,
}

impl Shard {
    /// Builds the shard owning `gi % n_shards == s`.
    fn build(groups: &[RuleGroup], n_items: usize, s: usize, n_shards: usize) -> Shard {
        let mut postings = vec![Vec::new(); n_items];
        let mut n_local = 0;
        for (gi, g) in groups.iter().enumerate().skip(s).step_by(n_shards) {
            let local = (gi / n_shards) as u32;
            n_local = local as usize + 1;
            for item in g.upper.iter() {
                postings[item as usize].push(local);
            }
        }
        Shard { postings, n_local }
    }

    /// Local ids of owned groups covering `sample`, ascending.
    /// `threshold(local)` gives the counter value at which the group's
    /// fractional containment is met.
    fn matches(&self, sample: &IdList, threshold: impl Fn(u32) -> u32) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_local];
        let mut touched = Vec::new();
        for item in sample.iter() {
            let Some(posting) = self.postings.get(item as usize) else {
                continue;
            };
            for &local in posting {
                if counts[local as usize] == 0 {
                    touched.push(local);
                }
                counts[local as usize] += 1;
            }
        }
        touched.retain(|&local| counts[local as usize] >= threshold(local));
        touched.sort_unstable();
        touched
    }
}

/// An immutable sharded index over one artifact's rule groups,
/// answer-for-answer equivalent to [`RuleGroupIndex`](crate::RuleGroupIndex).
pub struct ShardedIndex {
    meta: ArtifactMeta,
    groups: Vec<RuleGroup>,
    rules: Vec<ScoredRule>,
    theta: f64,
    /// Per group (global id): counter value meeting the threshold.
    thresholds: Vec<u32>,
    /// Per group (global id): classification rank (lower wins).
    rank: Vec<u32>,
    /// Per class: group ids in classification-rank order.
    by_class: Vec<Vec<u32>>,
    shards: Vec<Shard>,
}

impl std::fmt::Debug for ShardedIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedIndex")
            .field("groups", &self.groups.len())
            .field("shards", &self.shards.len())
            .field("theta", &self.theta)
            .finish_non_exhaustive()
    }
}

impl ShardedIndex {
    /// Builds the index with an explicit `theta ∈ (0, 1]` and shard
    /// count (clamped to `[1, n_groups.max(1)]`).
    pub fn build(artifact: Artifact, theta: f64, n_shards: usize) -> Self {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let Artifact { meta, groups } = artifact;
        let n_shards = n_shards.clamp(1, groups.len().max(1));
        let rules: Vec<ScoredRule> = groups.iter().map(|g| irg_rule(g, theta)).collect();

        let thresholds: Vec<u32> = groups
            .iter()
            .map(|g| match g.upper.len() {
                0 => u32::MAX,
                len => smallest_meeting(theta, len),
            })
            .collect();

        // Global classification order first — partitioning must not be
        // able to perturb rank ties.
        let mut order: Vec<u32> = (0..groups.len() as u32).collect();
        order.sort_by(|&a, &b| rule_cmp(&rules[a as usize], &rules[b as usize]).then(a.cmp(&b)));
        let mut rank = vec![0u32; groups.len()];
        for (pos, &gi) in order.iter().enumerate() {
            rank[gi as usize] = pos as u32;
        }
        let mut by_class = vec![Vec::new(); meta.n_classes()];
        for &gi in &order {
            by_class[groups[gi as usize].class as usize].push(gi);
        }

        // Scatter the postings build across one thread per shard.
        let n_items = meta.n_items();
        let mut shards: Vec<Option<Shard>> = (0..n_shards).map(|_| None).collect();
        farmer_support::thread::scope(|scope| {
            for (s, slot) in shards.iter_mut().enumerate() {
                let groups = &groups;
                scope.spawn(move || *slot = Some(Shard::build(groups, n_items, s, n_shards)));
            }
        });
        let shards = shards
            .into_iter()
            .map(|s| s.expect("shard built"))
            .collect();

        ShardedIndex {
            meta,
            groups,
            rules,
            theta,
            thresholds,
            rank,
            by_class,
            shards,
        }
    }

    /// Builds with the offline IRG threshold and one shard per
    /// available core (capped at 8 — posting lists stop shrinking
    /// usefully beyond that on mined workloads).
    pub fn from_artifact(artifact: Artifact) -> Self {
        let shards = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        Self::build(artifact, IRG_FINGERPRINT_THETA, shards)
    }

    /// The artifact's dataset metadata.
    pub fn meta(&self) -> &ArtifactMeta {
        &self.meta
    }

    /// The indexed groups, in artifact order.
    pub fn groups(&self) -> &[RuleGroup] {
        &self.groups
    }

    /// The derived classification rules, parallel to [`groups`](Self::groups).
    pub fn rules(&self) -> &[ScoredRule] {
        &self.rules
    }

    /// The fractional containment threshold the index was built with.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// How many shards the postings are partitioned into.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total posting-list entries across every shard — one per
    /// (item, owning-group) incidence, the dominant index memory term.
    /// Surfaced by `GET /v1/admin/stats`.
    pub fn postings_entries(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.postings.iter().map(Vec::len).sum::<usize>())
            .sum()
    }

    /// Ids of the groups predicting `class`, best rank first.
    pub fn groups_for_class(&self, class: ClassLabel) -> &[u32] {
        self.by_class
            .get(class as usize)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All groups covering `sample`, as sorted global ids: each shard
    /// scans its own postings (scatter), and the per-shard hit lists —
    /// already sorted in global order within a shard — merge back
    /// (gather).
    pub fn matches(&self, sample: &IdList) -> Vec<u32> {
        let n_shards = self.shards.len();
        let mut merged = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            let hits = shard.matches(sample, |local| {
                self.thresholds[local as usize * n_shards + s]
            });
            merged.extend(
                hits.into_iter()
                    .map(|local| local * n_shards as u32 + s as u32),
            );
        }
        merged.sort_unstable();
        merged
    }

    /// Classifies `sample`: the best-ranked covering group's class, or
    /// the artifact's majority class when nothing covers it.
    pub fn classify(&self, sample: &IdList) -> Prediction {
        let best = self
            .matches(sample)
            .into_iter()
            .min_by_key(|&gi| self.rank[gi as usize]);
        match best {
            Some(gi) => Prediction {
                class: self.groups[gi as usize].class,
                group: Some(gi),
            },
            None => Prediction {
                class: self.meta.majority_class(),
                group: None,
            },
        }
    }

    /// Resolves item tokens to a sample [`IdList`] exactly as
    /// [`RuleGroupIndex::parse_sample`] does.
    pub fn parse_sample<'t>(
        &self,
        tokens: impl IntoIterator<Item = &'t str>,
    ) -> (IdList, Vec<String>) {
        let mut ids = Vec::new();
        let mut unknown = Vec::new();
        for tok in tokens {
            if let Some(id) = self.meta.item_by_name(tok) {
                ids.push(id);
            } else if let Ok(id) = tok.parse::<u32>() {
                if (id as usize) < self.meta.n_items() {
                    ids.push(id);
                } else {
                    unknown.push(tok.to_string());
                }
            } else {
                unknown.push(tok.to_string());
            }
        }
        (IdList::from_iter(ids), unknown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RuleGroupIndex;
    use farmer_core::{canonical_sort, Farmer, MiningParams};
    use farmer_dataset::DatasetBuilder;

    fn small_artifact() -> Artifact {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 1, 2], 0);
        b.add_row([0, 1], 0);
        b.add_row([1, 2, 3], 1);
        b.add_row([0, 3], 1);
        let d = b.build();
        let mut groups = Vec::new();
        for class in 0..2 {
            groups.extend(
                Farmer::new(MiningParams::new(class).min_sup(1))
                    .mine(&d)
                    .groups,
            );
        }
        canonical_sort(&mut groups);
        Artifact {
            meta: ArtifactMeta::from_dataset(&d),
            groups,
        }
    }

    #[test]
    fn sharded_equals_monolithic_on_fixed_samples() {
        let art = small_artifact();
        let mono = RuleGroupIndex::from_artifact(Artifact {
            meta: art.meta.clone(),
            groups: art.groups.clone(),
        });
        for n_shards in [1, 2, 3, 7, 64] {
            let sharded = ShardedIndex::build(art.clone(), mono.theta(), n_shards);
            for sample in [vec![], vec![0], vec![0, 1], vec![0, 1, 2, 3], vec![3]] {
                let s = IdList::from_iter(sample.iter().copied());
                assert_eq!(sharded.matches(&s), mono.matches(&s), "{n_shards} shards");
                assert_eq!(sharded.classify(&s), mono.classify(&s), "{n_shards} shards");
            }
        }
    }

    #[test]
    fn class_partitions_cover_all_groups() {
        let idx = ShardedIndex::build(small_artifact(), 0.8, 3);
        let total: usize = (0..2).map(|c| idx.groups_for_class(c).len()).sum();
        assert_eq!(total, idx.groups().len());
    }

    #[test]
    fn shard_count_is_clamped() {
        let idx = ShardedIndex::build(small_artifact(), 0.8, 0);
        assert_eq!(idx.n_shards(), 1);
        let n = small_artifact().groups.len();
        let idx = ShardedIndex::build(small_artifact(), 0.8, 10 * n);
        assert!(idx.n_shards() <= n);
    }
}

//! `fgi-client watch`: a polling terminal dashboard over the serving
//! observability surface.
//!
//! Scrapes `GET /v1/metrics` (and, when a token is supplied,
//! `GET /v1/admin/stats`) every interval and renders one frame per
//! poll: request rate and error rate over the interval, p50/p95/p99
//! request latency from the cumulative histogram buckets, the
//! in-flight gauge, and shed/reload deltas. Rates come from counter
//! *deltas* between consecutive scrapes, so the dashboard shows what
//! the server is doing now, not since boot.
//!
//! The scrape parser ([`parse_metrics`]) and the quantile math
//! ([`quantile_ns`]) are plain functions over the exposition text, so
//! the unit tests drive them without a live server.

use crate::client::{http_get, http_get_auth};
use farmer_support::json::Json;
use std::io::Write;

/// How `watch` polls and for how long.
#[derive(Clone, Debug)]
pub struct WatchOptions {
    /// The server's `host:port`.
    pub addr: String,
    /// Poll interval in milliseconds (clamped to ≥ 50).
    pub interval_ms: u64,
    /// Stop after this many frames; `None` polls until the scrape
    /// fails (e.g. the server went away).
    pub frames: Option<u64>,
    /// Bearer token for `/v1/admin/stats`; without one the stats line
    /// degrades gracefully to the metrics-only view.
    pub token: Option<String>,
}

/// One scrape of `/v1/metrics`, reduced to what the dashboard shows.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// `farmer_serve_requests_total`.
    pub requests: u64,
    /// `farmer_serve_errors_total`.
    pub errors: u64,
    /// `farmer_serve_shed_total`.
    pub shed: u64,
    /// `farmer_serve_reloads_total`.
    pub reloads: u64,
    /// `farmer_serve_inflight`.
    pub inflight: i64,
    /// `farmer_serve_request_ns` cumulative buckets as
    /// `(upper_bound_ns, cumulative_count)`, exposition order.
    pub buckets: Vec<(f64, u64)>,
    /// `farmer_serve_request_ns_count`.
    pub count: u64,
    /// The artifact swap epoch from `GET /v1/healthz` — not part of
    /// the exposition; the poll loop fills it in so frames can flag
    /// the exact scrape where a new artifact went live.
    pub epoch: u64,
}

/// Parses the Prometheus text exposition into a [`MetricsSnapshot`].
/// Unknown families are skipped, so the parser survives the exposition
/// growing new metrics.
pub fn parse_metrics(text: &str) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let Some((name, value)) = line.rsplit_once(' ') else {
            continue;
        };
        if let Some(rest) = name.strip_prefix("farmer_serve_request_ns_bucket{le=\"") {
            let le = rest.trim_end_matches("\"}");
            let upper = if le == "+Inf" {
                f64::INFINITY
            } else {
                le.parse().unwrap_or(f64::INFINITY)
            };
            if let Ok(cum) = value.parse::<u64>() {
                snap.buckets.push((upper, cum));
            }
            continue;
        }
        match name {
            "farmer_serve_requests_total" => snap.requests = value.parse().unwrap_or(0),
            "farmer_serve_errors_total" => snap.errors = value.parse().unwrap_or(0),
            "farmer_serve_shed_total" => snap.shed = value.parse().unwrap_or(0),
            "farmer_serve_reloads_total" => snap.reloads = value.parse().unwrap_or(0),
            "farmer_serve_inflight" => snap.inflight = value.parse().unwrap_or(0),
            "farmer_serve_request_ns_count" => snap.count = value.parse().unwrap_or(0),
            _ => {}
        }
    }
    snap
}

/// The `q`-quantile (0..=1) in nanoseconds from cumulative histogram
/// buckets: the upper bound of the first bucket whose cumulative count
/// reaches `q × total`. 0 when the histogram is empty.
pub fn quantile_ns(buckets: &[(f64, u64)], q: f64) -> f64 {
    let total = buckets.last().map(|&(_, c)| c).unwrap_or(0);
    if total == 0 {
        return 0.0;
    }
    let target = (q * total as f64).ceil().max(1.0) as u64;
    for &(upper, cum) in buckets {
        if cum >= target {
            return upper;
        }
    }
    f64::INFINITY
}

fn fmt_ms(ns: f64) -> String {
    if ns.is_infinite() {
        "inf".to_string()
    } else {
        format!("{:.2}ms", ns / 1e6)
    }
}

/// Renders one dashboard frame from the previous and current scrapes.
/// With no previous scrape the rates show as cumulative totals.
pub fn render_frame(
    prev: Option<&MetricsSnapshot>,
    cur: &MetricsSnapshot,
    elapsed_s: f64,
    stats_line: &str,
) -> String {
    let d = |now: u64, before: u64| now.saturating_sub(before);
    let (dreq, derr, dshed, dreload) = match prev {
        Some(p) => (
            d(cur.requests, p.requests),
            d(cur.errors, p.errors),
            d(cur.shed, p.shed),
            d(cur.reloads, p.reloads),
        ),
        None => (cur.requests, cur.errors, cur.shed, cur.reloads),
    };
    let rps = if elapsed_s > 0.0 {
        dreq as f64 / elapsed_s
    } else {
        0.0
    };
    let err_rate = if dreq > 0 {
        100.0 * derr as f64 / dreq as f64
    } else {
        0.0
    };
    let p50 = quantile_ns(&cur.buckets, 0.50);
    let p95 = quantile_ns(&cur.buckets, 0.95);
    let p99 = quantile_ns(&cur.buckets, 0.99);
    // Flag the frame where a publish landed: the serving epoch moved
    // between this scrape and the previous one.
    let swapped = if prev.is_some_and(|p| p.epoch != cur.epoch) {
        " *artifact updated*"
    } else {
        ""
    };
    format!(
        "req/s {rps:8.1} | err {err_rate:5.1}% | p50 {} p95 {} p99 {} | inflight {} | \
         shed +{dshed} | reload +{dreload} | epoch {}{swapped} | total {}\n{stats_line}",
        fmt_ms(p50),
        fmt_ms(p95),
        fmt_ms(p99),
        cur.inflight,
        cur.epoch,
        cur.requests,
    )
}

/// The serving epoch from `GET /v1/healthz`, or 0 when the probe
/// fails (the dashboard degrades rather than dying mid-loop).
fn poll_epoch(addr: &str) -> u64 {
    match http_get(addr, "/v1/healthz") {
        Ok(resp) if resp.status == 200 => Json::parse(&resp.body)
            .ok()
            .and_then(|doc| doc.get("epoch").and_then(Json::as_u64))
            .unwrap_or(0),
        _ => 0,
    }
}

/// One-line digest of `/v1/admin/stats`, or a graceful note when the
/// endpoint refused or the token is absent.
fn stats_line(addr: &str, token: Option<&str>) -> String {
    let Some(token) = token else {
        return "stats: (no token; pass --token for /v1/admin/stats)".to_string();
    };
    match http_get_auth(addr, "/v1/admin/stats", Some(token)) {
        Ok(resp) if resp.status == 200 => match Json::parse(&resp.body) {
            Ok(doc) => {
                let num = |k: &str| doc.get(k).and_then(Json::as_u64).unwrap_or(0);
                let slow = match doc.get("slow") {
                    Some(Json::Arr(entries)) => entries.len(),
                    _ => 0,
                };
                format!(
                    "stats: uptime {:.1}s | epoch {} | groups {} | shards {} | postings {} | \
                     dropped {} | slow-ring {}",
                    num("uptime_ns") as f64 / 1e9,
                    num("epoch"),
                    num("groups"),
                    num("shards"),
                    num("postings_entries"),
                    num("dropped_events"),
                    slow,
                )
            }
            Err(e) => format!("stats: unparseable ({e})"),
        },
        Ok(resp) => format!("stats: unavailable (HTTP {})", resp.status),
        Err(e) => format!("stats: unreachable ({e})"),
    }
}

/// Runs the dashboard loop: scrape, render a frame to `out`, sleep,
/// repeat. Returns when the frame budget is exhausted; errors out when
/// a scrape fails.
pub fn run_watch(opts: &WatchOptions, out: &mut impl Write) -> std::io::Result<()> {
    let interval = std::time::Duration::from_millis(opts.interval_ms.max(50));
    let mut prev: Option<MetricsSnapshot> = None;
    let mut last = std::time::Instant::now();
    let mut frame = 0u64;
    loop {
        let resp = http_get(&opts.addr, "/v1/metrics")?;
        if resp.status != 200 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("/v1/metrics answered HTTP {}", resp.status),
            ));
        }
        let mut cur = parse_metrics(&resp.body);
        cur.epoch = poll_epoch(&opts.addr);
        let elapsed = last.elapsed().as_secs_f64();
        last = std::time::Instant::now();
        let stats = stats_line(&opts.addr, opts.token.as_deref());
        writeln!(
            out,
            "[{addr} frame {frame}]\n{}",
            render_frame(prev.as_ref(), &cur, elapsed, &stats),
            addr = opts.addr,
        )?;
        out.flush()?;
        prev = Some(cur);
        frame += 1;
        if let Some(budget) = opts.frames {
            if frame >= budget {
                return Ok(());
            }
        }
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# HELP farmer_serve_requests_total Monotonic count of serve_requests events.
# TYPE farmer_serve_requests_total counter
farmer_serve_requests_total 120
farmer_serve_errors_total 6
farmer_serve_shed_total 2
farmer_serve_reloads_total 1
# TYPE farmer_serve_inflight gauge
farmer_serve_inflight 3
# TYPE farmer_serve_request_ns histogram
farmer_serve_request_ns_bucket{le=\"1000\"} 40
farmer_serve_request_ns_bucket{le=\"2000\"} 100
farmer_serve_request_ns_bucket{le=\"4000\"} 119
farmer_serve_request_ns_bucket{le=\"+Inf\"} 120
farmer_serve_request_ns_sum 999999
farmer_serve_request_ns_count 120
";

    #[test]
    fn parses_the_families_the_dashboard_needs() {
        let snap = parse_metrics(SAMPLE);
        assert_eq!(snap.requests, 120);
        assert_eq!(snap.errors, 6);
        assert_eq!(snap.shed, 2);
        assert_eq!(snap.reloads, 1);
        assert_eq!(snap.inflight, 3);
        assert_eq!(snap.count, 120);
        assert_eq!(snap.buckets.len(), 4);
        assert_eq!(snap.buckets[1], (2000.0, 100));
        assert!(snap.buckets[3].0.is_infinite());
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let snap = parse_metrics(SAMPLE);
        // p50 target = 60 of 120 → first bucket with cum ≥ 60 is le=2000
        assert_eq!(quantile_ns(&snap.buckets, 0.50), 2000.0);
        assert_eq!(quantile_ns(&snap.buckets, 0.95), 4000.0);
        assert!(quantile_ns(&snap.buckets, 0.999).is_infinite());
        assert_eq!(quantile_ns(&[], 0.5), 0.0);
    }

    #[test]
    fn frames_report_deltas_between_scrapes() {
        let mut prev = parse_metrics(SAMPLE);
        prev.requests = 100;
        prev.errors = 5;
        prev.shed = 0;
        let cur = parse_metrics(SAMPLE);
        let frame = render_frame(Some(&prev), &cur, 2.0, "stats: n/a");
        // 20 requests over 2 s
        assert!(frame.contains("req/s     10.0"), "{frame}");
        // 1 error of 20 requests = 5%
        assert!(frame.contains("err   5.0%"), "{frame}");
        assert!(frame.contains("shed +2"), "{frame}");
        assert!(frame.contains("inflight 3"), "{frame}");
        assert!(frame.contains("stats: n/a"), "{frame}");
    }

    #[test]
    fn frames_flag_an_epoch_change_and_stay_quiet_otherwise() {
        let mut prev = parse_metrics(SAMPLE);
        prev.epoch = 3;
        let mut cur = parse_metrics(SAMPLE);
        cur.epoch = 3;
        let same = render_frame(Some(&prev), &cur, 1.0, "");
        assert!(same.contains("epoch 3"), "{same}");
        assert!(!same.contains("artifact updated"), "{same}");

        cur.epoch = 4;
        let moved = render_frame(Some(&prev), &cur, 1.0, "");
        assert!(moved.contains("epoch 4 *artifact updated*"), "{moved}");

        // The very first frame has no baseline: never flagged.
        let first = render_frame(None, &cur, 1.0, "");
        assert!(!first.contains("artifact updated"), "{first}");
    }
}

//! Property tests pinning the serving index to its oracles: the
//! inverted-index `matches` equals a naive linear scan over every
//! group's derived rule, and `classify` equals the offline
//! `RuleListClassifier::from_ranked` prediction on the same artifact.

use farmer_classify::{irg_rule, RuleListClassifier, IRG_FINGERPRINT_THETA};
use farmer_core::{canonical_sort, Farmer, MiningParams, RuleGroup};
use farmer_dataset::DatasetBuilder;
use farmer_serve::RuleGroupIndex;
use farmer_store::{read_artifact, ArtifactMeta, ArtifactWriter};
use farmer_support::check::prelude::*;
use rowset::IdList;
use std::io::Cursor;

/// Rows, then samples, over a shared item universe.
type Rows = Vec<(std::collections::BTreeSet<u32>, u32)>;
type Samples = Vec<std::collections::BTreeSet<u32>>;

fn arb_case() -> impl Strategy<Value = (Rows, Samples)> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        (
            collection::vec(
                (
                    collection::btree_set(0..n_items as u32, 1..n_items),
                    0u32..2,
                ),
                n_rows,
            ),
            collection::vec(collection::btree_set(0..n_items as u32, 0..n_items), 1..6),
        )
    })
}

/// Mines every class and round-trips the result through `.fgi` bytes,
/// so the index under test is fed exactly what production feeds it:
/// a loaded artifact, not in-process mining output.
fn artifact_of(rows: &Rows) -> farmer_store::Artifact {
    let mut b = DatasetBuilder::new(2);
    for (items, label) in rows {
        b.add_row(items.iter().copied(), *label);
    }
    let d = b.build();
    let mut groups: Vec<RuleGroup> = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new(&mut buf, &meta).unwrap();
    for g in &groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    read_artifact(&buf.into_inner()).unwrap()
}

check! {
    #![config(cases = 48)]

    /// Inverted-index matching equals the linear scan, and indexed
    /// classification equals the offline rule-list prediction.
    #[test]
    fn index_equals_linear_scan_and_offline((rows, samples) in arb_case()) {
        let artifact = artifact_of(&rows);
        let offline = RuleListClassifier::from_ranked(
            artifact.groups.iter().map(|g| irg_rule(g, IRG_FINGERPRINT_THETA)).collect(),
            artifact.meta.majority_class(),
        );
        let idx = RuleGroupIndex::from_artifact(artifact);
        for sample in &samples {
            let s = IdList::from_iter(sample.iter().copied());
            let naive: Vec<u32> = idx
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.matches(&s))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(idx.matches(&s), naive, "sample {:?}", sample);
            prop_assert_eq!(
                idx.classify(&s).class,
                offline.predict(&s),
                "sample {:?}",
                sample
            );
        }
    }

    /// The equivalence is θ-independent, including θ = 1 (exact
    /// containment) and small θ (almost any overlap matches).
    #[test]
    fn index_equals_linear_scan_any_theta(
        (rows, samples) in arb_case(),
        theta_pct in select(vec![10usize, 50, 80, 100]),
    ) {
        let theta = theta_pct as f64 / 100.0;
        let idx = RuleGroupIndex::build(artifact_of(&rows), theta);
        for sample in &samples {
            let s = IdList::from_iter(sample.iter().copied());
            let naive: Vec<u32> = idx
                .rules()
                .iter()
                .enumerate()
                .filter(|(_, r)| r.matches(&s))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(idx.matches(&s), naive, "theta {} sample {:?}", theta, sample);
        }
    }
}

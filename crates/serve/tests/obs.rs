//! Observability tests: request ids on the wire, the structured
//! access log's golden schema, the `/v1/admin/stats` auth matrix and
//! payload, RED counter families under mixed traffic, and the
//! byte-for-byte `/metrics` ↔ `/v1/metrics` parity.

use farmer_classify::IRG_FINGERPRINT_THETA;
use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_serve::{
    http_get, http_get_auth, http_post, start, ArtifactHandle, ServeConfig, ShardedIndex,
};
use farmer_store::{save_artifact, Artifact, ArtifactMeta};
use farmer_support::json::Json;
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Mines the four-row, two-class artifact the server tests share and
/// writes it to `path`; returns the group count.
fn write_artifact(path: &Path) -> usize {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    save_artifact(path, &ArtifactMeta::from_dataset(&d), &groups).unwrap();
    groups.len()
}

fn in_memory_handle() -> Arc<ArtifactHandle> {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let artifact = Artifact {
        meta: ArtifactMeta::from_dataset(&d),
        groups,
    };
    Arc::new(ArtifactHandle::from_index(ShardedIndex::build(
        artifact,
        IRG_FINGERPRINT_THETA,
        2,
    )))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fgi-obs-{}-{name}", std::process::id()))
}

fn error_field(body: &str, field: &str) -> String {
    Json::parse(body)
        .unwrap()
        .get("error")
        .and_then(|e| e.get(field))
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn every_response_carries_a_unique_request_id() {
    let server = start(in_memory_handle(), &ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();

    // Concurrent hammer: every response id is present, hex, distinct.
    let mut ids = HashSet::new();
    let collected: Vec<String> = farmer_support::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    (0..10)
                        .map(|_| {
                            let r = http_get(&addr, "/v1/healthz").unwrap();
                            assert_eq!(r.status, 200);
                            r.header("X-Request-Id").unwrap().to_string()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    for id in collected {
        assert_eq!(id.len(), 16, "{id}");
        assert!(id.bytes().all(|b| b.is_ascii_hexdigit()), "{id}");
        assert!(ids.insert(id.clone()), "duplicate request id {id}");
    }
    assert_eq!(ids.len(), 80);

    // An error envelope stamps the same id the header carries.
    let r = http_get(&addr, "/v1/classify").unwrap();
    assert_eq!(r.status, 400);
    assert_eq!(
        error_field(&r.body, "request_id"),
        r.header("X-Request-Id").unwrap()
    );

    // A sane inbound id is echoed; a junk one is replaced.
    let raw = |path: &str, rid: &str| {
        let mut s = TcpStream::connect(&addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nX-Request-Id: {rid}\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(raw("/v1/healthz", "trace-me_42").contains("X-Request-Id: trace-me_42"));
    let replaced = raw("/v1/healthz", "bad id with spaces");
    assert!(!replaced.contains("bad id with spaces"), "{replaced}");
    assert!(replaced.contains("X-Request-Id: "), "{replaced}");

    server.shutdown();
}

/// The access-log line schema, pinned against a checked-in golden.
/// `FARMER_UPDATE_GOLDEN=1` regenerates after an intentional change.
#[test]
fn access_log_lines_match_the_golden_schema() {
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/testdata/access_log_line.json");
    let log_path = tmp("access.jsonl");
    let config = ServeConfig {
        log_out: Some(log_path.to_str().unwrap().to_string()),
        ..ServeConfig::default()
    };
    let server = start(in_memory_handle(), &config).unwrap();
    let addr = server.addr().to_string();

    assert_eq!(http_get(&addr, "/v1/healthz").unwrap().status, 200);
    assert_eq!(
        http_get(&addr, "/v1/classify?items=i0,i1").unwrap().status,
        200
    );
    assert_eq!(http_get(&addr, "/v1/classify").unwrap().status, 400);
    let rid = {
        let r = http_get(&addr, "/v1/query?items=i0").unwrap();
        assert_eq!(r.status, 200);
        r.header("X-Request-Id").unwrap().to_string()
    };
    server.shutdown();

    let text = std::fs::read_to_string(&log_path).unwrap();
    let lines: Vec<Json> = text.lines().map(|l| Json::parse(l).unwrap()).collect();
    assert_eq!(lines.len(), 4, "{text}");

    if std::env::var_os("FARMER_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, lines[0].pretty()).unwrap();
    }
    let golden = Json::parse(
        &std::fs::read_to_string(golden_path)
            .unwrap_or_else(|e| panic!("{golden_path}: {e} (FARMER_UPDATE_GOLDEN=1 to create)")),
    )
    .unwrap();
    for (i, line) in lines.iter().enumerate() {
        assert_same_shape(line, &golden, &format!("line[{i}]"));
    }

    // Value invariants on top of the shape: statuses in request order,
    // and the id the client saw is the id the log recorded.
    let field = |i: usize, k: &str| lines[i].get(k).cloned().unwrap();
    assert_eq!(field(0, "path").as_str(), Some("/v1/healthz"));
    assert_eq!(field(2, "status").as_u64(), Some(400));
    assert_eq!(field(3, "id").as_str(), Some(rid.as_str()));
    assert_eq!(field(3, "shed"), Json::Bool(false));
    std::fs::remove_file(&log_path).unwrap();
}

/// Recursive structural comparison against the golden document (the
/// CLI's stats-schema idiom): identical keys in identical order,
/// matching scalar types, values free to vary.
fn assert_same_shape(actual: &Json, golden: &Json, path: &str) {
    match (actual, golden) {
        (Json::Null, Json::Null) => {}
        (Json::Bool(_), Json::Bool(_)) => {}
        (Json::Str(_), Json::Str(_)) => {}
        (Json::Int(_) | Json::Float(_), Json::Int(_) | Json::Float(_)) => {}
        (Json::Arr(a), Json::Arr(g)) => {
            if let Some(first) = g.first() {
                assert!(!a.is_empty(), "empty array at {path}, golden is not");
                for (i, el) in a.iter().enumerate() {
                    assert_same_shape(el, first, &format!("{path}[{i}]"));
                }
            }
        }
        (Json::Obj(a), Json::Obj(g)) => {
            let keys = |o: &[(String, Json)]| -> Vec<String> {
                o.iter().map(|(k, _)| k.clone()).collect()
            };
            assert_eq!(keys(a), keys(g), "object keys at {path}");
            for ((k, av), (_, gv)) in a.iter().zip(g.iter()) {
                assert_same_shape(av, gv, &format!("{path}.{k}"));
            }
        }
        _ => panic!("shape mismatch at {path}: got {actual:?}, golden {golden:?}"),
    }
}

#[test]
fn admin_stats_requires_the_bearer_token() {
    // Without a token the endpoint is disabled outright.
    let server = start(in_memory_handle(), &ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let r = http_get(&addr, "/v1/admin/stats").unwrap();
    assert_eq!(
        (r.status, error_field(&r.body, "code").as_str()),
        (403, "admin_disabled")
    );
    server.shutdown();

    // With a token: missing or wrong bearer is 401, the right one 200.
    let config = ServeConfig {
        admin_token: Some("sekrit".to_string()),
        slow_ms: 0, // capture everything so the ring is non-empty
        ..ServeConfig::default()
    };
    let server = start(in_memory_handle(), &config).unwrap();
    let addr = server.addr().to_string();
    let r = http_get(&addr, "/v1/admin/stats").unwrap();
    assert_eq!(
        (r.status, error_field(&r.body, "code").as_str()),
        (401, "unauthorized")
    );
    let r = http_get_auth(&addr, "/v1/admin/stats", Some("wrong")).unwrap();
    assert_eq!(
        (r.status, error_field(&r.body, "code").as_str()),
        (401, "unauthorized")
    );

    assert_eq!(
        http_get(&addr, "/v1/classify?items=i1").unwrap().status,
        200
    );
    let r = http_get_auth(&addr, "/v1/admin/stats", Some("sekrit")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert!(doc.get("uptime_ns").and_then(Json::as_u64).unwrap() > 0);
    assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("shards").and_then(Json::as_u64), Some(2));
    assert!(doc.get("postings_entries").and_then(Json::as_u64).unwrap() > 0);
    let counters = doc.get("counters").unwrap();
    assert_eq!(
        counters
            .get("serve_classify_requests")
            .and_then(Json::as_u64),
        Some(1)
    );
    // slow_ms=0 captures every request (including the auth probes
    // above): the classify is in the ring with its phase breakdown.
    let Some(Json::Arr(slow)) = doc.get("slow") else {
        panic!("slow must be an array: {}", r.body);
    };
    assert!(!slow.is_empty());
    let entry = slow
        .iter()
        .find(|e| e.get("path").and_then(Json::as_str) == Some("/v1/classify"))
        .unwrap_or_else(|| panic!("classify not captured: {}", r.body));
    for phase in ["parse_ns", "snapshot_ns", "compute_ns", "write_ns"] {
        assert!(entry.get(phase).and_then(Json::as_u64).is_some(), "{phase}");
    }
    assert_eq!(entry.get("status").and_then(Json::as_u64), Some(200));
    server.shutdown();
}

/// The acceptance scenario: concurrent requests + a reload + a shed,
/// then every RED family on `/v1/metrics` has moved.
#[test]
fn red_counter_families_increment_under_mixed_traffic() {
    let path = tmp("red.fgi");
    write_artifact(&path);
    let handle = Arc::new(ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 2).unwrap());
    let config = ServeConfig {
        workers: 2,
        max_inflight: 1,
        admin_token: Some("sekrit".to_string()),
        ..ServeConfig::default()
    };
    let server = start(Arc::clone(&handle), &config).unwrap();
    let addr = server.addr().to_string();

    // Concurrent successful traffic plus one 4xx. With max_inflight=1
    // a knock can be shed; clients retry until they land 5 successes,
    // so exactly 20 classify requests are answered 200.
    farmer_support::thread::scope(|scope| {
        for _ in 0..4 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut ok = 0;
                while ok < 5 {
                    // A shed can also surface as a reset (the acceptor
                    // closes with the request unread) — retry either way.
                    match http_get(&addr, "/v1/classify?items=i0,i1") {
                        Ok(r) if r.status == 200 => ok += 1,
                        Ok(r) => assert_eq!(r.status, 503),
                        Err(_) => {}
                    }
                }
            });
        }
    });
    assert_eq!(http_get(&addr, "/v1/classify").unwrap().status, 400);

    // One reload through the authenticated endpoint.
    let r = http_post(&addr, "/v1/admin/reload", "", Some("sekrit")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);

    // Force at least one shed: hold a connection in a worker by
    // withholding its request, then knock with another silent
    // connection (sending nothing keeps the shed 503 readable — the
    // acceptor never reads the socket before closing it).
    let held = TcpStream::connect(server.addr()).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(50));
    let mut knock = TcpStream::connect(server.addr()).unwrap();
    let mut out = String::new();
    knock.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("X-Request-Id: "), "{out}");
    drop(held);

    let scrape = || -> String {
        for _ in 0..50 {
            if let Ok(r) = http_get(&addr, "/v1/metrics") {
                if r.status == 200 {
                    return r.body;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        panic!("metrics never answered after the shed window");
    };
    let text = scrape();
    let value = |family: &str| -> i64 {
        text.lines()
            .find(|l| l.starts_with(family) && l.split_whitespace().count() == 2)
            .unwrap_or_else(|| panic!("family {family} missing:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    assert!(value("farmer_serve_requests_total") >= 22);
    assert!(value("farmer_serve_classify_requests_total") >= 21);
    assert!(value("farmer_serve_errors_total") >= 1);
    assert!(value("farmer_serve_classify_errors_total") >= 1);
    assert!(value("farmer_serve_responses_2xx_total") >= 20);
    assert!(value("farmer_serve_responses_4xx_total") >= 1);
    assert!(value("farmer_serve_reloads_total") >= 1);
    assert!(value("farmer_serve_shed_total") >= 1);
    // The scrape itself is in flight while the tracer drains: ≥ 1.
    assert!(value("farmer_serve_inflight") >= 1, "{text}");
    assert!(text.contains("# TYPE farmer_serve_requests_total counter"));
    assert!(text.contains("# TYPE farmer_serve_inflight gauge"));

    server.shutdown();
    assert!(server_requests_shed_is_gone(&path));
}

/// Tiny epilogue helper so the artifact tempfile is removed even if a
/// later assertion grows above; returns true for the final assert.
fn server_requests_shed_is_gone(path: &Path) -> bool {
    let _ = std::fs::remove_file(path);
    true
}

/// The deprecated `/metrics` alias answers byte-for-byte what
/// `/v1/metrics` answers: two freshly started identical servers, one
/// scrape each, identical exposition text.
#[test]
fn legacy_metrics_scrape_is_byte_identical_to_v1() {
    let scrape_fresh = |path: &str| -> String {
        let server = start(in_memory_handle(), &ServeConfig::default()).unwrap();
        let addr = server.addr().to_string();
        let r = http_get(&addr, path).unwrap();
        assert_eq!(r.status, 200);
        server.shutdown();
        r.body
    };
    let legacy = scrape_fresh("/metrics");
    let v1 = scrape_fresh("/v1/metrics");
    assert_eq!(legacy, v1);
    // Both carry the new families even before any traffic.
    for family in [
        "farmer_serve_requests_total",
        "farmer_serve_shed_total",
        "farmer_serve_inflight",
    ] {
        assert!(v1.contains(family), "{family} missing:\n{v1}");
    }
}

#[test]
fn healthz_reports_build_and_artifact_versions() {
    let path = tmp("healthz.fgi");
    write_artifact(&path);
    let handle = Arc::new(ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 2).unwrap());
    let server = start(handle, &ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let doc = Json::parse(&http_get(&addr, "/v1/healthz").unwrap().body).unwrap();
    assert_eq!(
        doc.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    // save_artifact writes the current (v2) format.
    assert_eq!(doc.get("artifact_version").and_then(Json::as_u64), Some(2));
    server.shutdown();
    std::fs::remove_file(&path).unwrap();

    // An in-memory handle has no artifact on disk: version 0.
    let server = start(in_memory_handle(), &ServeConfig::default()).unwrap();
    let addr = server.addr().to_string();
    let doc = Json::parse(&http_get(&addr, "/v1/healthz").unwrap().body).unwrap();
    assert_eq!(doc.get("artifact_version").and_then(Json::as_u64), Some(0));
    server.shutdown();
}

//! Hot-swap tests: the authenticated `/v1/admin/reload` endpoint, and
//! the zero-dropped-requests guarantee while artifacts swap under
//! sustained traffic.

use farmer_classify::IRG_FINGERPRINT_THETA;
use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_serve::{http_get, http_post, start, ArtifactHandle, ServeConfig};
use farmer_store::{save_artifact, ArtifactMeta};
use farmer_support::json::Json;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Mines a small artifact whose group count depends on `variant` and
/// writes it to `path`; returns the group count.
fn write_artifact(path: &Path, variant: usize) -> usize {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    for i in 0..variant {
        b.add_row([i as u32 % 4, 3], 1);
    }
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    save_artifact(path, &ArtifactMeta::from_dataset(&d), &groups).unwrap();
    groups.len()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fgi-reload-{}-{name}", std::process::id()))
}

fn config(token: Option<&str>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        admin_token: token.map(str::to_string),
        ..ServeConfig::default()
    }
}

fn error_code(body: &str) -> String {
    Json::parse(body)
        .unwrap()
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap()
        .to_string()
}

#[test]
fn reload_requires_the_bearer_token() {
    let path = tmp("auth.fgi");
    write_artifact(&path, 0);
    let handle = Arc::new(ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 2).unwrap());
    let server = start(Arc::clone(&handle), &config(Some("sekrit"))).unwrap();
    let addr = server.addr().to_string();

    let r = http_post(&addr, "/v1/admin/reload", "", None).unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (401, "unauthorized")
    );
    let r = http_post(&addr, "/v1/admin/reload", "", Some("wrong")).unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (401, "unauthorized")
    );
    assert_eq!(handle.epoch(), 0, "unauthorized requests must not swap");

    let n_new = write_artifact(&path, 2);
    let r = http_post(&addr, "/v1/admin/reload", "", Some("sekrit")).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("reloaded").and_then(Json::as_bool), Some(true));
    assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("groups").and_then(Json::as_u64), Some(n_new as u64));

    // The swap is visible to subsequent requests.
    let h = http_get(&addr, "/v1/healthz").unwrap();
    let doc = Json::parse(&h.body).unwrap();
    assert_eq!(doc.get("groups").and_then(Json::as_u64), Some(n_new as u64));
    assert_eq!(doc.get("epoch").and_then(Json::as_u64), Some(1));

    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn reload_is_disabled_without_a_token() {
    let path = tmp("disabled.fgi");
    write_artifact(&path, 0);
    let handle = Arc::new(ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 1).unwrap());
    let server = start(handle, &config(None)).unwrap();
    let addr = server.addr().to_string();
    let r = http_post(&addr, "/v1/admin/reload", "", Some("anything")).unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (403, "admin_disabled")
    );
    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

/// The hot-swap guarantee under fire: hammer the server from several
/// client threads while the artifact is rewritten and reloaded over
/// and over. Every single request — on whichever side of a swap it
/// lands — must complete with 200; nothing is dropped or errored.
#[test]
fn hammer_during_repeated_reloads_drops_nothing() {
    let path = tmp("hammer.fgi");
    let n0 = write_artifact(&path, 0);
    let handle = Arc::new(ArtifactHandle::load(&path, IRG_FINGERPRINT_THETA, 2).unwrap());
    let server = start(Arc::clone(&handle), &config(Some("tok"))).unwrap();
    let addr = server.addr().to_string();

    const CLIENTS: usize = 4;
    const RELOADS: usize = 6;
    let stop = AtomicBool::new(false);
    let mut final_groups = 0;
    farmer_support::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                let mut rounds = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    for p in [
                        "/v1/classify?items=i0,i1",
                        "/v1/query?items=i3",
                        "/v1/healthz",
                    ] {
                        let r = http_get(&addr, p).unwrap();
                        assert_eq!(r.status, 200, "{p} failed mid-swap: {}", r.body);
                    }
                    rounds += 1;
                }
                assert!(rounds > 0, "hammer never ran");
            });
        }
        // Swap artifacts while the hammer runs; every reload changes
        // the group count so stale answers would be visible.
        for i in 0..RELOADS {
            final_groups = write_artifact(&path, (i + 1) * 2);
            let r = http_post(&addr, "/v1/admin/reload", "", Some("tok")).unwrap();
            assert_eq!(r.status, 200, "reload {i}: {}", r.body);
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
    });
    let _ = n0;
    assert_eq!(handle.epoch(), RELOADS as u64);
    assert_eq!(handle.current().groups().len(), final_groups);
    // The last swap is observably the last artifact written: its row
    // count reflects the final variant.
    assert_eq!(handle.current().meta().n_rows, 4 + (RELOADS as u64) * 2);

    // Zero sheds, zero drops: every connection the hammer opened was
    // fully served.
    assert_eq!(server.requests_shed(), 0);
    let h = http_get(&addr, "/v1/healthz").unwrap();
    assert_eq!(
        Json::parse(&h.body)
            .unwrap()
            .get("groups")
            .and_then(Json::as_u64),
        Some(final_groups as u64)
    );

    server.shutdown();
    std::fs::remove_file(&path).unwrap();
}

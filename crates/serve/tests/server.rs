//! Integration tests of the HTTP server: the `/v1` endpoint surface,
//! legacy alias parity, batch classification, admission control,
//! answer stability under concurrent load, and graceful shutdown
//! draining.

use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_serve::{http_get, http_post, start, ArtifactHandle, ServeConfig, ShardedIndex};
use farmer_store::{Artifact, ArtifactMeta};
use farmer_support::json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_artifact() -> Artifact {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([0, 2, 4], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    b.add_row([3, 4], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    assert!(!groups.is_empty());
    Artifact {
        meta: ArtifactMeta::from_dataset(&d),
        groups,
    }
}

fn test_handle() -> Arc<ArtifactHandle> {
    Arc::new(ArtifactHandle::from_index(ShardedIndex::build(
        test_artifact(),
        farmer_classify::IRG_FINGERPRINT_THETA,
        2,
    )))
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        ..ServeConfig::default()
    }
}

/// Pulls `error.code` out of the uniform envelope.
fn error_code(body: &str) -> String {
    Json::parse(body)
        .unwrap_or_else(|e| panic!("{e}: {body}"))
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("no error.code in {body}"))
        .to_string()
}

#[test]
fn v1_endpoints_answer() {
    let handle = test_handle();
    let index = handle.current();
    let server = start(Arc::clone(&handle), &config(2)).unwrap();
    let addr = server.addr().to_string();

    let h = http_get(&addr, "/v1/healthz").unwrap();
    assert_eq!(h.status, 200);
    let health = Json::parse(&h.body).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("groups").and_then(Json::as_u64),
        Some(index.groups().len() as u64)
    );
    assert_eq!(health.get("shards").and_then(Json::as_u64), Some(2));
    assert_eq!(health.get("epoch").and_then(Json::as_u64), Some(0));

    let c = http_get(&addr, "/v1/classify?items=i0,i1,i2").unwrap();
    assert_eq!(c.status, 200, "body: {}", c.body);
    let body = Json::parse(&c.body).unwrap();
    let class = body.get("class").and_then(Json::as_u64).unwrap() as u32;
    let (sample, _) = index.parse_sample(["i0", "i1", "i2"]);
    assert_eq!(class, index.classify(&sample).class);

    let q = http_get(&addr, "/v1/query?items=i0,i1,i2&limit=3").unwrap();
    assert_eq!(q.status, 200);
    let body = Json::parse(&q.body).unwrap();
    let total = body.get("total").and_then(Json::as_u64).unwrap();
    assert_eq!(total, index.matches(&sample).len() as u64);
    assert!(body.get("returned").and_then(Json::as_u64).unwrap() <= 3);

    // Error paths carry the uniform envelope with stable codes.
    let r = http_get(&addr, "/v1/classify").unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (400, "bad_request")
    );
    let r = http_get(&addr, "/v1/query?items=i0&class=9").unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (400, "bad_request")
    );
    let r = http_get(&addr, "/v1/nope").unwrap();
    assert_eq!((r.status, error_code(&r.body).as_str()), (404, "not_found"));

    let m = http_get(&addr, "/v1/metrics").unwrap();
    assert_eq!(m.status, 200);
    assert!(m.body.contains("farmer_serve_request_ns_count"));
    assert!(m.body.contains("farmer_serve_classify_ns_bucket"));

    server.shutdown();
}

#[test]
fn legacy_paths_alias_v1_with_deprecation_header() {
    let server = start(test_handle(), &config(2)).unwrap();
    let addr = server.addr().to_string();

    // Byte-identical bodies and statuses on every aliased endpoint.
    // Pinning the same X-Request-Id on both sides keeps even the
    // error envelopes (which echo the id) byte-for-byte comparable.
    let get_pinned = |path: &str, rid: &str| {
        let mut s = TcpStream::connect(&addr).unwrap();
        write!(
            s,
            "GET {path} HTTP/1.1\r\nX-Request-Id: {rid}\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        let (head, body) = out.split_once("\r\n\r\n").unwrap();
        let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
        (status, body.to_string())
    };
    for (legacy, v1) in [
        ("/healthz", "/v1/healthz"),
        ("/classify?items=i0,i1,i2", "/v1/classify?items=i0,i1,i2"),
        ("/classify", "/v1/classify"),
        (
            "/query?items=i0,i1&limit=2",
            "/v1/query?items=i0,i1&limit=2",
        ),
        ("/no-such", "/v1/no-such"),
    ] {
        let (old_status, old_body) = get_pinned(legacy, "parity-check");
        let (new_status, new_body) = get_pinned(v1, "parity-check");
        assert_eq!(old_status, new_status, "{legacy}");
        assert_eq!(old_body, new_body, "{legacy}");
    }

    // The alias is marked deprecated on the wire; /v1 is not.
    let raw = |path: &str| {
        let mut s = TcpStream::connect(server.addr()).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };
    assert!(raw("/healthz").contains("Deprecation: true"));
    assert!(!raw("/v1/healthz").contains("Deprecation: true"));

    server.shutdown();
}

#[test]
fn batch_classify_matches_single_requests() {
    let handle = test_handle();
    let server = start(Arc::clone(&handle), &config(2)).unwrap();
    let addr = server.addr().to_string();

    let samples = [vec!["i0", "i1"], vec!["i3"], vec![], vec!["i0", "bogus"]];
    let body = format!(
        "{{\"samples\":[{}]}}",
        samples
            .iter()
            .map(|s| format!(
                "[{}]",
                s.iter()
                    .map(|t| format!("\"{t}\""))
                    .collect::<Vec<_>>()
                    .join(",")
            ))
            .collect::<Vec<_>>()
            .join(",")
    );
    let r = http_post(&addr, "/v1/classify", &body, None).unwrap();
    assert_eq!(r.status, 200, "{}", r.body);
    let doc = Json::parse(&r.body).unwrap();
    assert_eq!(doc.get("count").and_then(Json::as_u64), Some(4));
    let Some(Json::Arr(predictions)) = doc.get("predictions") else {
        panic!("no predictions array: {}", r.body);
    };

    // Order is preserved: prediction i equals the single-sample GET.
    for (s, p) in samples.iter().zip(predictions) {
        let single = http_get(&addr, &format!("/v1/classify?items={}", s.join(","))).unwrap();
        assert_eq!(single.status, 200);
        assert_eq!(
            p.to_string(),
            Json::parse(&single.body).unwrap().to_string()
        );
    }
    // The last sample's unknown token is reported per entry.
    assert_eq!(
        predictions[3].get("unknown_items").map(Json::to_string),
        Some("[\"bogus\"]".to_string())
    );

    server.shutdown();
}

#[test]
fn batch_classify_rejects_malformed_bodies() {
    let server = start(test_handle(), &config(1)).unwrap();
    let addr = server.addr().to_string();
    for bad in [
        "not json",
        "{}",
        "{\"samples\": 5}",
        "{\"samples\": [\"i0\"]}",
        "{\"samples\": [[42]]}",
    ] {
        let r = http_post(&addr, "/v1/classify", bad, None).unwrap();
        assert_eq!(
            (r.status, error_code(&r.body).as_str()),
            (400, "bad_request"),
            "{bad}"
        );
    }
    server.shutdown();
}

#[test]
fn wrong_methods_are_405() {
    let server = start(test_handle(), &config(1)).unwrap();
    let addr = server.addr().to_string();

    // POST where only GET lives.
    let r = http_post(&addr, "/v1/query", "{}", None).unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (405, "method_not_allowed")
    );
    // GET where only POST lives.
    let r = http_get(&addr, "/v1/admin/reload").unwrap();
    assert_eq!(
        (r.status, error_code(&r.body).as_str()),
        (405, "method_not_allowed")
    );
    // A method nothing accepts.
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "PUT /v1/classify HTTP/1.1\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");

    server.shutdown();
}

#[test]
fn admission_control_sheds_beyond_max_inflight() {
    let handle = test_handle();
    let mut cfg = config(1);
    cfg.max_inflight = 1;
    let server = start(handle, &cfg).unwrap();
    let addr = server.addr();

    // Occupy the single in-flight slot: the worker blocks reading this
    // connection's request, which we withhold.
    let mut held = TcpStream::connect(addr).unwrap();
    held.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    std::thread::sleep(Duration::from_millis(100));

    // The next connection is shed inline with 503 + Retry-After and
    // the uniform envelope — never queued behind the stuck worker.
    let mut over = TcpStream::connect(addr).unwrap();
    over.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut out = String::new();
    over.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 503"), "{out}");
    assert!(out.contains("Retry-After: 1"), "{out}");
    assert!(out.contains("\"overloaded\""), "{out}");
    assert!(server.requests_shed() >= 1);

    // Releasing the held connection frees the slot: it gets a full
    // answer, and traffic flows again.
    write!(held, "GET /v1/healthz HTTP/1.1\r\n\r\n").unwrap();
    held.flush().unwrap();
    let mut out = String::new();
    held.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 200"), "{out}");

    let ok = http_get(&addr.to_string(), "/v1/healthz").unwrap();
    assert_eq!(ok.status, 200);

    // The shed shows up in the metrics the admission controller is
    // instrumented through.
    let m = http_get(&addr.to_string(), "/v1/metrics").unwrap();
    let shed_count = m
        .body
        .lines()
        .find(|l| l.starts_with("farmer_serve_shed_ns_count"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|n| n.parse::<u64>().ok())
        .unwrap_or_else(|| panic!("no serve_shed family:\n{}", m.body));
    assert!(shed_count >= 1);

    server.shutdown();
}

#[test]
fn concurrent_answers_equal_sequential() {
    let handle = test_handle();
    let server = start(Arc::clone(&handle), &config(4)).unwrap();
    let addr = server.addr().to_string();

    let paths: Vec<String> = [
        "/v1/classify?items=i0,i1",
        "/v1/classify?items=i3",
        "/v1/classify?items=i0,i2,i4",
        "/v1/classify?items=",
        "/v1/query?items=i0,i1,i2&limit=100",
        "/v1/query?items=i3,i4",
        "/v1/healthz",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let sequential: Vec<String> = paths
        .iter()
        .map(|p| {
            let r = http_get(&addr, p).unwrap();
            assert_eq!(r.status, 200, "{p}: {}", r.body);
            r.body
        })
        .collect();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 10;
    farmer_support::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                for _ in 0..ROUNDS {
                    for (p, expected) in paths.iter().zip(&sequential) {
                        let r = http_get(&addr, p).unwrap();
                        assert_eq!(r.status, 200);
                        assert_eq!(&r.body, expected, "{p} answered differently under load");
                    }
                }
            });
        }
    });

    // Every one of those requests shows up in the latency histogram.
    let m = http_get(&addr, "/v1/metrics").unwrap();
    let total = (CLIENTS * ROUNDS + 1) * paths.len();
    let count_line = m
        .body
        .lines()
        .find(|l| l.starts_with("farmer_serve_request_ns_count"))
        .expect("request histogram family present");
    let count: u64 = count_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        count >= total as u64,
        "metrics count {count} < requests issued {total}"
    );

    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let handle = test_handle();
    let index = handle.current();
    let server = start(Arc::clone(&handle), &config(2)).unwrap();
    let addr = server.addr();

    // Establish connections *before* shutdown, but hold the requests
    // back: the workers are now blocked reading these sockets.
    const IN_FLIGHT: usize = 6;
    let mut conns: Vec<TcpStream> = (0..IN_FLIGHT)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    // Give the acceptor a beat to pull them off the backlog.
    std::thread::sleep(Duration::from_millis(50));

    let shutdown = std::thread::spawn(move || server.shutdown());
    // Shutdown must not complete while requests are still unanswered;
    // send them now and demand full responses.
    std::thread::sleep(Duration::from_millis(50));
    let mut bodies = Vec::new();
    for s in conns.iter_mut() {
        write!(s, "GET /v1/classify?items=i0,i1 HTTP/1.1\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 200"),
            "dropped in-flight request: {out:?}"
        );
        bodies.push(out.split("\r\n\r\n").nth(1).unwrap().to_string());
    }
    shutdown.join().unwrap();

    // Every drained answer matches the live answer.
    let (sample, _) = index.parse_sample(["i0", "i1"]);
    let expected = index.classify(&sample).class as u64;
    for b in bodies {
        let got = Json::parse(&b).unwrap().get("class").and_then(Json::as_u64);
        assert_eq!(got, Some(expected));
    }

    // The listener is closed: new connections are refused or reset.
    assert!(
        TcpStream::connect(addr).is_err() || http_get(&addr.to_string(), "/v1/healthz").is_err(),
        "server still accepting after shutdown"
    );
}

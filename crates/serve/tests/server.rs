//! Integration tests of the HTTP server: endpoint behavior, answer
//! stability under concurrent load, and graceful shutdown draining.

use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_serve::{http_get, start, RuleGroupIndex, ServeConfig};
use farmer_store::{Artifact, ArtifactMeta};
use farmer_support::json::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn test_index() -> Arc<RuleGroupIndex> {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([0, 2, 4], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    b.add_row([3, 4], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    assert!(!groups.is_empty());
    Arc::new(RuleGroupIndex::from_artifact(Artifact {
        meta: ArtifactMeta::from_dataset(&d),
        groups,
    }))
}

fn config(workers: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
    }
}

#[test]
fn endpoints_answer() {
    let index = test_index();
    let server = start(Arc::clone(&index), &config(2)).unwrap();
    let addr = server.addr().to_string();

    let h = http_get(&addr, "/healthz").unwrap();
    assert_eq!(h.status, 200);
    let health = Json::parse(&h.body).unwrap();
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("groups").and_then(Json::as_u64),
        Some(index.groups().len() as u64)
    );

    let c = http_get(&addr, "/classify?items=i0,i1,i2").unwrap();
    assert_eq!(c.status, 200, "body: {}", c.body);
    let body = Json::parse(&c.body).unwrap();
    let class = body.get("class").and_then(Json::as_u64).unwrap() as u32;
    let (sample, _) = index.parse_sample(["i0", "i1", "i2"]);
    assert_eq!(class, index.classify(&sample).class);

    let q = http_get(&addr, "/query?items=i0,i1,i2&limit=3").unwrap();
    assert_eq!(q.status, 200);
    let body = Json::parse(&q.body).unwrap();
    let total = body.get("total").and_then(Json::as_u64).unwrap();
    assert_eq!(total, index.matches(&sample).len() as u64);
    assert!(body.get("returned").and_then(Json::as_u64).unwrap() <= 3);

    // Error paths: missing items, bad class, unknown path.
    assert_eq!(http_get(&addr, "/classify").unwrap().status, 400);
    assert_eq!(
        http_get(&addr, "/query?items=i0&class=9").unwrap().status,
        400
    );
    assert_eq!(http_get(&addr, "/nope").unwrap().status, 404);

    let m = http_get(&addr, "/metrics").unwrap();
    assert_eq!(m.status, 200);
    assert!(m.body.contains("farmer_serve_request_ns_count"));
    assert!(m.body.contains("farmer_serve_classify_ns_bucket"));

    server.shutdown();
}

#[test]
fn non_get_is_405() {
    let server = start(test_index(), &config(1)).unwrap();
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    write!(stream, "POST /classify HTTP/1.1\r\n\r\n").unwrap();
    let mut out = String::new();
    stream.read_to_string(&mut out).unwrap();
    assert!(out.starts_with("HTTP/1.1 405"), "{out}");
    server.shutdown();
}

#[test]
fn concurrent_answers_equal_sequential() {
    let index = test_index();
    let server = start(Arc::clone(&index), &config(4)).unwrap();
    let addr = server.addr().to_string();

    let paths: Vec<String> = [
        "/classify?items=i0,i1",
        "/classify?items=i3",
        "/classify?items=i0,i2,i4",
        "/classify?items=",
        "/query?items=i0,i1,i2&limit=100",
        "/query?items=i3,i4",
        "/healthz",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let sequential: Vec<String> = paths
        .iter()
        .map(|p| {
            let r = http_get(&addr, p).unwrap();
            assert_eq!(r.status, 200, "{p}: {}", r.body);
            r.body
        })
        .collect();

    const CLIENTS: usize = 8;
    const ROUNDS: usize = 10;
    farmer_support::thread::scope(|s| {
        for _ in 0..CLIENTS {
            s.spawn(|| {
                for _ in 0..ROUNDS {
                    for (p, expected) in paths.iter().zip(&sequential) {
                        let r = http_get(&addr, p).unwrap();
                        assert_eq!(r.status, 200);
                        assert_eq!(&r.body, expected, "{p} answered differently under load");
                    }
                }
            });
        }
    });

    // Every one of those requests shows up in the latency histogram.
    let m = http_get(&addr, "/metrics").unwrap();
    let total = (CLIENTS * ROUNDS + 1) * paths.len();
    let count_line = m
        .body
        .lines()
        .find(|l| l.starts_with("farmer_serve_request_ns_count"))
        .expect("request histogram family present");
    let count: u64 = count_line
        .split_whitespace()
        .nth(1)
        .unwrap()
        .parse()
        .unwrap();
    assert!(
        count >= total as u64,
        "metrics count {count} < requests issued {total}"
    );

    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let index = test_index();
    let server = start(Arc::clone(&index), &config(2)).unwrap();
    let addr = server.addr();

    // Establish connections *before* shutdown, but hold the requests
    // back: the workers are now blocked reading these sockets.
    const IN_FLIGHT: usize = 6;
    let mut conns: Vec<TcpStream> = (0..IN_FLIGHT)
        .map(|_| {
            let s = TcpStream::connect(addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        })
        .collect();
    // Give the acceptor a beat to pull them off the backlog.
    std::thread::sleep(Duration::from_millis(50));

    let shutdown = std::thread::spawn(move || server.shutdown());
    // Shutdown must not complete while requests are still unanswered;
    // send them now and demand full responses.
    std::thread::sleep(Duration::from_millis(50));
    let mut bodies = Vec::new();
    for s in conns.iter_mut() {
        write!(s, "GET /classify?items=i0,i1 HTTP/1.1\r\n\r\n").unwrap();
        s.flush().unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(
            out.starts_with("HTTP/1.1 200"),
            "dropped in-flight request: {out:?}"
        );
        bodies.push(out.split("\r\n\r\n").nth(1).unwrap().to_string());
    }
    shutdown.join().unwrap();

    // Every drained answer matches the live answer.
    let (sample, _) = index.parse_sample(["i0", "i1"]);
    let expected = index.classify(&sample).class as u64;
    for b in bodies {
        let got = Json::parse(&b).unwrap().get("class").and_then(Json::as_u64);
        assert_eq!(got, Some(expected));
    }

    // The listener is closed: new connections are refused or reset.
    assert!(
        TcpStream::connect(addr).is_err() || http_get(&addr.to_string(), "/healthz").is_err(),
        "server still accepting after shutdown"
    );
}

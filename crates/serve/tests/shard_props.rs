//! Property tests pinning the sharded index to the monolithic one:
//! for any mined artifact, any shard count, and any sample,
//! [`ShardedIndex`] must reproduce [`RuleGroupIndex`]'s `matches` and
//! `classify` answers exactly — partitioning is an implementation
//! detail, never an observable one.

use farmer_core::{canonical_sort, Farmer, MiningParams, RuleGroup};
use farmer_dataset::DatasetBuilder;
use farmer_serve::{RuleGroupIndex, ShardedIndex};
use farmer_store::{read_artifact, ArtifactMeta, ArtifactWriter};
use farmer_support::check::prelude::*;
use rowset::IdList;
use std::io::Cursor;

type Rows = Vec<(std::collections::BTreeSet<u32>, u32)>;
type Samples = Vec<std::collections::BTreeSet<u32>>;

fn arb_case() -> impl Strategy<Value = (Rows, Samples)> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        (
            collection::vec(
                (
                    collection::btree_set(0..n_items as u32, 1..n_items),
                    0u32..2,
                ),
                n_rows,
            ),
            collection::vec(collection::btree_set(0..n_items as u32, 0..n_items), 1..6),
        )
    })
}

/// Mines every class and round-trips through `.fgi` bytes, so both
/// indexes are fed exactly what production feeds them.
fn artifact_of(rows: &Rows) -> farmer_store::Artifact {
    let mut b = DatasetBuilder::new(2);
    for (items, label) in rows {
        b.add_row(items.iter().copied(), *label);
    }
    let d = b.build();
    let mut groups: Vec<RuleGroup> = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    let meta = ArtifactMeta::from_dataset(&d);
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new(&mut buf, &meta).unwrap();
    for g in &groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    read_artifact(&buf.into_inner()).unwrap()
}

check! {
    #![config(cases = 32)]

    /// Sharding is answer-invariant across shard counts, θ values, and
    /// samples.
    #[test]
    fn sharded_equals_monolithic(
        (rows, samples) in arb_case(),
        n_shards in select(vec![1usize, 2, 3, 5, 16]),
        theta_pct in select(vec![50usize, 80, 100]),
    ) {
        let theta = theta_pct as f64 / 100.0;
        let artifact = artifact_of(&rows);
        let mono = RuleGroupIndex::build(artifact.clone(), theta);
        let sharded = ShardedIndex::build(artifact, theta, n_shards);
        for sample in &samples {
            let s = IdList::from_iter(sample.iter().copied());
            prop_assert_eq!(
                sharded.matches(&s),
                mono.matches(&s),
                "{} shards, theta {}, sample {:?}",
                n_shards,
                theta,
                sample
            );
            prop_assert_eq!(
                sharded.classify(&s),
                mono.classify(&s),
                "{} shards, theta {}, sample {:?}",
                n_shards,
                theta,
                sample
            );
        }
        // The class partitions agree too (same global rank order).
        for c in 0..2 {
            prop_assert_eq!(sharded.groups_for_class(c), mono.groups_for_class(c));
        }
    }
}

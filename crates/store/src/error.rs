//! The error taxonomy of the `.fgi` reader and writer.

use std::fmt;

/// Every way reading or writing an artifact can fail. Reader failures
/// are precise by design: the corrupt-artifact regression tests assert
/// the *variant*, not just "some error", so a truncation can never be
/// misreported as a checksum problem or vice versa.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying I/O operation failed (open, read, write, seek).
    Io(std::io::Error),
    /// The file ends before the bytes its header (or the fixed header
    /// itself) says must exist.
    Truncated {
        /// Bytes the file needed to be complete.
        expected: u64,
        /// Bytes actually present.
        found: u64,
    },
    /// The first four bytes are not [`crate::MAGIC`] — not an `.fgi`
    /// file at all.
    BadMagic {
        /// The bytes found where the magic should be.
        found: [u8; 4],
    },
    /// The file declares a format version this build does not read.
    VersionSkew {
        /// The version in the file.
        found: u32,
        /// The newest version this build supports.
        supported: u32,
    },
    /// The payload does not hash to the checksum in the header: the
    /// bytes were damaged after writing.
    ChecksumMismatch {
        /// The checksum stored in the header.
        stored: u64,
        /// The checksum computed over the payload as read.
        computed: u64,
    },
    /// The envelope is intact (magic, version, length, checksum all
    /// pass) but the payload's structure is inconsistent — impossible
    /// counts, invalid UTF-8, out-of-dictionary item ids, bitset bits
    /// beyond the row capacity. Indicates a writer bug or a deliberate
    /// hand-crafted file, not transport damage.
    Corrupt {
        /// What was wrong, for the human reading the log.
        detail: String,
    },
}

impl StoreError {
    pub(crate) fn corrupt(detail: impl Into<String>) -> Self {
        StoreError::Corrupt {
            detail: detail.into(),
        }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "artifact I/O failed: {e}"),
            StoreError::Truncated { expected, found } => {
                write!(f, "artifact truncated: need {expected} bytes, have {found}")
            }
            StoreError::BadMagic { found } => {
                write!(f, "not an .fgi artifact (magic bytes {found:02x?})")
            }
            StoreError::VersionSkew { found, supported } => write!(
                f,
                "artifact format version {found} is newer than supported version {supported}"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "artifact checksum mismatch: header says {stored:#018x}, payload hashes to {computed:#018x}"
            ),
            StoreError::Corrupt { detail } => write!(f, "artifact payload corrupt: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_every_field() {
        let cases: Vec<(StoreError, &[&str])> = vec![
            (
                StoreError::Truncated {
                    expected: 24,
                    found: 3,
                },
                &["24", "3", "truncated"],
            ),
            (StoreError::BadMagic { found: *b"ZIP!" }, &["magic"]),
            (
                StoreError::VersionSkew {
                    found: 9,
                    supported: 1,
                },
                &["9", "1", "version"],
            ),
            (
                StoreError::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                &["checksum", "0x"],
            ),
            (StoreError::corrupt("bad utf-8 in item 3"), &["item 3"]),
        ];
        for (e, needles) in cases {
            let s = e.to_string();
            for n in needles {
                assert!(s.contains(n), "{s:?} missing {n}");
            }
        }
    }
}

//! Append-only `.fgd` row journals for streaming ingest.
//!
//! A journal records rows that arrived *after* a base dataset was
//! frozen: each record is one new sample (its item ids plus a class
//! label). The streaming pipeline (`farmer-pipeline`) tails the
//! journal, extends the base dataset with the new rows, and remines
//! incrementally; the `farmer ingest` CLI and the server's
//! `POST /v1/admin/ingest` endpoint both append to the same file, so
//! the journal — not any process's memory — is the source of truth for
//! what has arrived.
//!
//! # The `.fgd` format, version 1
//!
//! All integers are little-endian; varints are LEB128
//! ([`farmer_support::varint`]). A fixed 16-byte header is followed by
//! zero or more self-delimiting, individually checksummed records:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FGDJ"
//!      4     4  format version (u32) = 1
//!      8     8  base-dataset fingerprint (u64, see below)
//!     16     –  records…
//! ```
//!
//! Each record:
//!
//! ```text
//! u32  payload length in bytes
//! …    payload: varint class label,
//!               varint item count,
//!               delta-coded item ids (varint first id,
//!               then varint gap − 1 per id; strictly ascending)
//! u64  FNV-1a 64 checksum of the payload bytes
//! ```
//!
//! The per-record frame makes two failure modes distinguishable. A
//! **torn tail** — the bytes after the last complete record don't form
//! a whole frame, because a writer died mid-append — is expected under
//! crash-append semantics: [`read_journal`] stops there and reports it
//! via [`Journal::torn_tail`]; [`JournalWriter::open_append`] truncates
//! it so the next append lands on a clean boundary. A **checksum
//! mismatch on a complete frame** is real corruption and always an
//! error.
//!
//! The header's fingerprint binds the journal to one base dataset
//! ([`dataset_fingerprint`] hashes the shape and both dictionaries), so
//! a journal can never be replayed against a dataset whose item ids
//! mean something else.

use crate::{Result, StoreError};
use farmer_dataset::Dataset;
use farmer_support::hash::{fnv1a, Fnv1a};
use farmer_support::varint;
use rowset::IdList;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// The four magic bytes opening every `.fgd` journal.
pub const JOURNAL_MAGIC: [u8; 4] = *b"FGDJ";

/// The current (and only) journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Size of the fixed journal header preceding the records.
pub const JOURNAL_HEADER_LEN: usize = 16;

/// Frame overhead per record: the `u32` payload length before the
/// payload and the `u64` checksum after it.
const FRAME_OVERHEAD: usize = 4 + 8;

/// Largest payload [`read_journal`] accepts for a single record. Real
/// rows are a few hundred items; the cap only stops a corrupt length
/// field from allocating gigabytes before the checksum gets a chance to
/// reject the record.
const MAX_RECORD_PAYLOAD: u32 = 1 << 24;

/// A stable digest of a dataset's *shape*: row/item/class counts plus
/// both name dictionaries. Journals embed it so replaying rows against
/// a different base dataset — where the same item ids would name
/// different genes — fails loudly at open time instead of silently
/// corrupting the mined output.
///
/// Row *contents* are deliberately not hashed: the fingerprint must be
/// cheap enough to compute on every open, and the dictionaries already
/// pin what the ids mean.
pub fn dataset_fingerprint(data: &Dataset) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(data.n_rows() as u64);
    h.write_u64(data.n_items() as u64);
    h.write_u64(data.n_classes() as u64);
    for i in 0..data.n_items() {
        h.write(data.item_name(i as u32).as_bytes());
        h.write(&[0xff]);
    }
    for c in 0..data.n_classes() {
        h.write(data.class_name(c as u32).as_bytes());
        h.write(&[0xff]);
    }
    h.finish()
}

/// One journaled row: the sample's item ids and its class label.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// The row's item ids, strictly ascending.
    pub items: IdList,
    /// The row's class label, an index into the base dataset's class
    /// dictionary.
    pub label: u32,
}

/// A fully read journal: every complete record, in arrival order.
#[derive(Clone, Debug)]
pub struct Journal {
    /// The base-dataset fingerprint from the header.
    pub fingerprint: u64,
    /// Every complete, checksum-verified record.
    pub records: Vec<JournalRecord>,
    /// Whether bytes after the last complete record were ignored — a
    /// writer died mid-append. Expected under crash semantics, surfaced
    /// so callers can log it.
    pub torn_tail: bool,
}

/// Serializes one record payload (label, count, delta-coded ids).
fn encode_record_payload(items: &IdList, label: u32) -> Result<Vec<u8>> {
    let ids = items.as_slice();
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(StoreError::corrupt(
            "journal record item ids not strictly ascending".to_string(),
        ));
    }
    let mut payload = Vec::with_capacity(2 + 2 * ids.len());
    varint::write_u64(&mut payload, label as u64);
    varint::write_u64(&mut payload, ids.len() as u64);
    for (i, &id) in ids.iter().enumerate() {
        let delta = if i == 0 {
            id as u64
        } else {
            (id - ids[i - 1] - 1) as u64
        };
        varint::write_u64(&mut payload, delta);
    }
    Ok(payload)
}

/// Parses one record payload. `what` labels errors with the record's
/// position in the file.
fn decode_record_payload(payload: &[u8], what: &str) -> Result<JournalRecord> {
    let mut pos = 0usize;
    let mut next = |field: &str| -> Result<u64> {
        match varint::read_u64(&payload[pos..]) {
            Some((v, used)) => {
                pos += used;
                Ok(v)
            }
            None => Err(StoreError::corrupt(format!(
                "{what}: invalid varint in {field} at payload offset {pos}"
            ))),
        }
    };
    let label = next("label")?;
    if label > u32::MAX as u64 {
        return Err(StoreError::corrupt(format!(
            "{what}: class label {label} exceeds u32"
        )));
    }
    let n = next("item count")?;
    if n > payload.len() as u64 {
        return Err(StoreError::corrupt(format!(
            "{what}: item count {n} larger than the {}-byte payload",
            payload.len()
        )));
    }
    let mut ids = Vec::with_capacity(n as usize);
    let mut prev: u64 = 0;
    for i in 0..n {
        let delta = next("item id")?;
        let id = if i == 0 { delta } else { prev + 1 + delta };
        if id > u32::MAX as u64 {
            return Err(StoreError::corrupt(format!(
                "{what}: item id {id} exceeds u32"
            )));
        }
        ids.push(id as u32);
        prev = id;
    }
    if pos != payload.len() {
        return Err(StoreError::corrupt(format!(
            "{what}: {} bytes left over after the item ids",
            payload.len() - pos
        )));
    }
    Ok(JournalRecord {
        items: IdList::from_sorted(ids),
        label: label as u32,
    })
}

/// Scans `bytes` (header already stripped) for complete records.
/// Returns the parsed records, the byte offset just past the last
/// complete record (relative to the start of `bytes`), and whether a
/// torn tail follows. Checksum mismatches on *complete* frames are
/// errors; an incomplete trailing frame is not.
fn scan_records(bytes: &[u8]) -> Result<(Vec<JournalRecord>, usize, bool)> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &bytes[pos..];
        if rest.is_empty() {
            return Ok((records, pos, false));
        }
        if rest.len() < 4 {
            return Ok((records, pos, true));
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().unwrap());
        if len > MAX_RECORD_PAYLOAD {
            // A length this absurd is either a torn frame whose length
            // bytes are garbage or corruption; without a complete frame
            // to checksum the two are indistinguishable, so treat it as
            // torn. open_append truncates it; read_journal reports it.
            return Ok((records, pos, true));
        }
        let frame = FRAME_OVERHEAD + len as usize;
        if rest.len() < frame {
            return Ok((records, pos, true));
        }
        let payload = &rest[4..4 + len as usize];
        let stored = u64::from_le_bytes(rest[4 + len as usize..frame].try_into().unwrap());
        let computed = fnv1a(payload);
        if computed != stored {
            return Err(StoreError::ChecksumMismatch { stored, computed });
        }
        records.push(decode_record_payload(
            payload,
            &format!("journal record {}", records.len()),
        )?);
        pos += frame;
    }
}

/// Validates a journal header, returning its fingerprint.
fn check_header(bytes: &[u8]) -> Result<u64> {
    if bytes.len() < JOURNAL_HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: JOURNAL_HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != JOURNAL_MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != JOURNAL_VERSION {
        return Err(StoreError::VersionSkew {
            found: version,
            supported: JOURNAL_VERSION,
        });
    }
    Ok(u64::from_le_bytes(bytes[8..16].try_into().unwrap()))
}

/// Reads and validates the journal at `path` without modifying it.
///
/// Stops at a torn trailing frame (reported via
/// [`Journal::torn_tail`]); fails on a bad header, a checksum mismatch
/// in any complete frame, or a malformed payload.
pub fn read_journal(path: &Path) -> Result<Journal> {
    let bytes = std::fs::read(path)?;
    let fingerprint = check_header(&bytes)?;
    let (records, _, torn_tail) = scan_records(&bytes[JOURNAL_HEADER_LEN..])?;
    Ok(Journal {
        fingerprint,
        records,
        torn_tail,
    })
}

/// An appending journal handle.
///
/// Each [`append`](Self::append) writes one complete frame with a
/// single `write_all` on a file opened `O_APPEND`, so concurrent
/// appenders in different processes (the CLI's `farmer ingest` next to
/// a running daemon) interleave at frame granularity rather than
/// corrupting each other. Durability is explicit: call
/// [`sync`](Self::sync) when the rows must survive power loss.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Creates a fresh journal at `path` bound to `fingerprint`,
    /// replacing any existing file.
    pub fn create(path: &Path, fingerprint: u64) -> Result<JournalWriter> {
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = Vec::with_capacity(JOURNAL_HEADER_LEN);
        header.extend_from_slice(&JOURNAL_MAGIC);
        header.extend_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header.extend_from_slice(&fingerprint.to_le_bytes());
        file.write_all(&header)?;
        drop(file);
        // Reopen in append mode so every later write lands at the end
        // even if another process appended in between.
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Opens an existing journal for appending, creating it if absent.
    ///
    /// Validates the header, checks the fingerprint against
    /// `fingerprint`, and truncates any torn trailing frame so the next
    /// append starts on a clean record boundary. Complete frames are
    /// checksum-verified on the way.
    pub fn open_append(path: &Path, fingerprint: u64) -> Result<JournalWriter> {
        if !path.exists() {
            return Self::create(path, fingerprint);
        }
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let found = check_header(&bytes)?;
        if found != fingerprint {
            return Err(StoreError::corrupt(format!(
                "journal fingerprint {found:#018x} does not match the base \
                 dataset ({fingerprint:#018x}); it was written against a \
                 different dataset"
            )));
        }
        let (_, end, torn) = scan_records(&bytes[JOURNAL_HEADER_LEN..])?;
        if torn {
            file.set_len((JOURNAL_HEADER_LEN + end) as u64)?;
            file.sync_data()?;
        }
        drop(file);
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Appends one row as a single atomic frame write.
    pub fn append(&mut self, items: &IdList, label: u32) -> Result<()> {
        let payload = encode_record_payload(items, label)?;
        let mut frame = Vec::with_capacity(FRAME_OVERHEAD + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        self.file.write_all(&frame)?;
        Ok(())
    }

    /// Forces appended frames to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fgd-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn ids(v: &[u32]) -> IdList {
        IdList::from_sorted(v.to_vec())
    }

    #[test]
    fn round_trips_records_through_create_and_read() {
        let path = tmp("roundtrip.fgd");
        let mut w = JournalWriter::create(&path, 0xfeed).unwrap();
        w.append(&ids(&[0, 3, 7]), 1).unwrap();
        w.append(&ids(&[]), 0).unwrap();
        w.append(&ids(&[u32::MAX - 1, u32::MAX]), 2).unwrap();
        w.sync().unwrap();
        let j = read_journal(&path).unwrap();
        assert_eq!(j.fingerprint, 0xfeed);
        assert!(!j.torn_tail);
        assert_eq!(j.records.len(), 3);
        assert_eq!(j.records[0].items.as_slice(), &[0, 3, 7]);
        assert_eq!(j.records[0].label, 1);
        assert_eq!(j.records[1].items.as_slice(), &[] as &[u32]);
        assert_eq!(j.records[2].items.as_slice(), &[u32::MAX - 1, u32::MAX]);
        assert_eq!(j.records[2].label, 2);
    }

    #[test]
    fn open_append_continues_an_existing_journal() {
        let path = tmp("continue.fgd");
        let mut w = JournalWriter::create(&path, 7).unwrap();
        w.append(&ids(&[1]), 0).unwrap();
        drop(w);
        let mut w = JournalWriter::open_append(&path, 7).unwrap();
        w.append(&ids(&[2, 5]), 1).unwrap();
        drop(w);
        let j = read_journal(&path).unwrap();
        assert_eq!(j.records.len(), 2);
        assert_eq!(j.records[1].items.as_slice(), &[2, 5]);
    }

    #[test]
    fn open_append_rejects_a_fingerprint_mismatch() {
        let path = tmp("mismatch.fgd");
        JournalWriter::create(&path, 1).unwrap();
        let err = JournalWriter::open_append(&path, 2).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn torn_tail_is_reported_by_read_and_repaired_by_open_append() {
        let path = tmp("torn.fgd");
        let mut w = JournalWriter::create(&path, 9).unwrap();
        w.append(&ids(&[1, 2]), 0).unwrap();
        drop(w);
        // Simulate a crash mid-append: write half a frame.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[200, 0, 0, 0, 42, 42]).unwrap();
        drop(f);
        let j = read_journal(&path).unwrap();
        assert!(j.torn_tail);
        assert_eq!(j.records.len(), 1);
        // Reopening truncates the torn bytes and appends cleanly.
        let mut w = JournalWriter::open_append(&path, 9).unwrap();
        w.append(&ids(&[3]), 1).unwrap();
        drop(w);
        let j = read_journal(&path).unwrap();
        assert!(!j.torn_tail);
        assert_eq!(j.records.len(), 2);
        assert_eq!(j.records[1].items.as_slice(), &[3]);
    }

    #[test]
    fn corrupting_a_complete_frame_is_a_checksum_error() {
        let path = tmp("corrupt.fgd");
        let mut w = JournalWriter::create(&path, 3).unwrap();
        w.append(&ids(&[4, 9]), 1).unwrap();
        drop(w);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a payload bit in the (only) complete record.
        let n = bytes.len();
        bytes[JOURNAL_HEADER_LEN + 5] ^= 1;
        std::fs::write(&path, &bytes[..n]).unwrap();
        let err = read_journal(&path).unwrap_err();
        assert!(
            matches!(err, StoreError::ChecksumMismatch { .. }),
            "{err:?}"
        );
    }

    #[test]
    fn header_validation_catches_magic_and_version() {
        let path = tmp("badmagic.fgd");
        std::fs::write(
            &path,
            b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00",
        )
        .unwrap();
        assert!(matches!(
            read_journal(&path).unwrap_err(),
            StoreError::BadMagic { .. }
        ));
        let path = tmp("badver.fgd");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&JOURNAL_MAGIC);
        bytes.extend_from_slice(&99u32.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_journal(&path).unwrap_err(),
            StoreError::VersionSkew { found: 99, .. }
        ));
    }

    #[test]
    fn fingerprint_tracks_shape_and_dictionaries() {
        let data = farmer_dataset::paper_example();
        let fp = dataset_fingerprint(&data);
        assert_eq!(fp, dataset_fingerprint(&data), "deterministic");
        let grown = data.appended(&[(ids(&[0]), 0)]).unwrap();
        assert_ne!(fp, dataset_fingerprint(&grown), "row count changes it");
    }
}

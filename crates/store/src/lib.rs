//! Persistent artifacts for mined interesting rule groups.
//!
//! A `farmer mine` run produces a set of IRGs — upper bounds, lower
//! bounds, row-support bitsets, and support/confidence/χ² margins —
//! that the downstream consumers (the serving index in `farmer-serve`,
//! the offline classifiers, ad-hoc queries) want *after* the mining
//! process has exited. This crate defines the `.fgi` on-disk format
//! for that rule base and nothing else: writing is streaming (one
//! group at a time, constant memory beyond the open file), reading is
//! validating (magic, version, declared length, FNV-1a content
//! checksum, then structural checks on every record), and every way a
//! file can be unacceptable maps to a distinct [`StoreError`] variant
//! rather than a panic or a silently wrong result.
//!
//! Two format versions exist. The reader loads both; the writer emits
//! v2 by default and v1 on request ([`ArtifactWriter::new_versioned`],
//! `farmer mine --fgi-version 1`).
//!
//! # The `.fgi` format, version 1
//!
//! All integers are little-endian. The file is a fixed 24-byte header
//! followed by one checksummed payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FGIA"
//!      4     4  format version (u32) = 1
//!      8     8  payload length in bytes (u64)
//!     16     8  FNV-1a 64 checksum of the payload bytes (u64)
//!     24     –  payload
//! ```
//!
//! Payload layout:
//!
//! ```text
//! n_rows   u64            dataset row count (bitset capacity)
//! n_class  u32            class count
//! per class:              name (u32 len + UTF-8 bytes), row count u64
//! n_items  u32            item dictionary size
//! per item:               name (u32 len + UTF-8 bytes)
//! group records…          self-delimiting, see below
//! n_groups u32            trailing record count (cross-check)
//! ```
//!
//! Each v1 group record: class `u32`; `sup`, `neg_sup`, `n_rows`,
//! `n_class` as `u64`; upper bound (`u32` count + ids); lower bounds
//! (`u32` count, each an id list); the row-support bitset (`u64`
//! capacity + `u32` word count + packed `u64` words, exactly
//! [`rowset::RowSet::words`]).
//!
//! The group count lives *after* the records so the writer can stream
//! groups without knowing how many are coming: at
//! [`ArtifactWriter::finish`] it appends the count, then seeks back
//! once to patch the payload length and checksum into the header. The
//! reader knows where the records end because the header declares the
//! payload length.
//!
//! # The `.fgi` format, version 2
//!
//! v2 stores the same information in a fraction of the bytes (5×+
//! smaller on mined microarray workloads) and adds a section table for
//! offset-cursor loading. The header grows to 32 bytes — the first 24
//! are laid out exactly like v1, so every validation layer works
//! before the version branch:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FGIA"
//!      4     4  format version (u32) = 2
//!      8     8  payload length in bytes (u64)
//!     16     8  FNV-1a 64 checksum of the payload bytes (u64)
//!     24     8  section-table offset within the payload (u64)
//!     32     –  payload
//! ```
//!
//! The payload is three contiguous sections followed by the section
//! table (ZIP-central-directory style, so the writer still streams and
//! hashes strictly forward, patching only the header at finish):
//!
//! * `DICT` — `n_rows` varint; class dictionary (varint count, then
//!   per class varint name length + UTF-8 bytes + varint row count);
//!   item dictionary with front-coded names (varint count, then per
//!   item varint shared-prefix length with the previous name + varint
//!   suffix length + suffix bytes).
//! * `GROUPS` — self-delimiting group records, see below.
//! * `TRAILER` — varint group count (cross-check).
//!
//! The table itself is a `u8` section count then per section `u8` id,
//! `u64` offset, `u64` len; sections must be in order, contiguous from
//! offset 0, and end exactly at the table. All varints are LEB128
//! ([`farmer_support::varint`]).
//!
//! Each v2 group record:
//!
//! * varint `class << 1 | eq`, where `eq` set means the group has
//!   exactly one lower bound equal to its upper bound (the dominant
//!   case in mined output) and no lower-bound bytes follow;
//! * varint `sup` — `neg_sup`, `n_rows`, and `n_class` are *derived*
//!   at read time (`|support| − sup`, `meta.n_rows`,
//!   `meta.class_counts[class]`), which is why
//!   [`ArtifactWriter::write_group`] rejects groups violating those
//!   identities under v2;
//! * the upper bound as a delta-coded id list: varint count, varint
//!   first id, then varint `gap − 1` per subsequent id (ids are
//!   strictly ascending);
//! * unless `eq`: varint lower-bound count, each lower bound
//!   delta-coded as *positions into the upper bound* (lower bounds are
//!   generators of the closed upper bound, hence subsets);
//! * the row-support bitset as run/verbatim hybrid blocks: the
//!   capacity is split into 64-word (4096-row) chunks and each chunk
//!   gets a 1-byte tag — `0` verbatim (varint byte count + the chunk's
//!   logical bytes with trailing zeros trimmed) or `1` runs (varint
//!   run count, then per maximal set-bit run varint gap from the
//!   previous run's end + varint `len − 1`, via
//!   [`rowset::RowSet::runs`]) — whichever encodes smaller.
//!
//! # Ordering
//!
//! The format preserves whatever group order the writer was handed.
//! Callers that want run-independent bytes (the CLI's `--save-irgs`
//! does) sort with [`farmer_core::canonical_sort`] first; the
//! round-trip property tests pin `save → load` to reproduce
//! byte-identical [`farmer_core::dump_groups`] dumps.
//!
//! # Companions
//!
//! Two sibling formats/protocols live here because they share the
//! store's framing idioms and error taxonomy:
//!
//! * the append-only `.fgd` **row journal** for streaming ingest
//!   ([`JournalWriter`], [`read_journal`]; wire layout in
//!   [`journal`](self::JOURNAL_MAGIC)'s module docs), and
//! * **atomic publication** of a freshly mined artifact over a live
//!   one ([`publish_artifact`]: temp file → fsync → rename → directory
//!   fsync).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod journal;
mod meta;
mod publish;
mod reader;
mod writer;

pub use error::StoreError;
pub use journal::{
    dataset_fingerprint, read_journal, Journal, JournalRecord, JournalWriter, JOURNAL_HEADER_LEN,
    JOURNAL_MAGIC, JOURNAL_VERSION,
};
pub use meta::ArtifactMeta;
pub use publish::publish_artifact;
pub use reader::{peek_version, read_artifact, Artifact};
pub use writer::{save_artifact, save_artifact_versioned, ArtifactWriter};

/// The four magic bytes opening every `.fgi` file.
pub const MAGIC: [u8; 4] = *b"FGIA";

/// The original format version; still fully readable and writable.
pub const VERSION_V1: u32 = 1;

/// The current format version, written by default.
pub const VERSION: u32 = 2;

/// Size of the fixed v1 header preceding the payload.
pub const HEADER_LEN: usize = 24;

/// Size of the fixed v2 header: the v1 header plus the section-table
/// offset.
pub const HEADER_LEN_V2: usize = 32;

/// Byte offset of the payload-length field within the header (both
/// versions).
pub(crate) const LEN_OFFSET: u64 = 8;

/// v2 section ids, in their mandatory file order.
pub const SECTION_DICT: u8 = 1;
/// See [`SECTION_DICT`].
pub const SECTION_GROUPS: u8 = 2;
/// See [`SECTION_DICT`].
pub const SECTION_TRAILER: u8 = 3;

/// Rows per v2 rowset chunk: 64 words of 64 bits.
pub(crate) const CHUNK_BITS: usize = 4096;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

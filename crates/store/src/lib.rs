//! Persistent artifacts for mined interesting rule groups.
//!
//! A `farmer mine` run produces a set of IRGs — upper bounds, lower
//! bounds, row-support bitsets, and support/confidence/χ² margins —
//! that the downstream consumers (the serving index in `farmer-serve`,
//! the offline classifiers, ad-hoc queries) want *after* the mining
//! process has exited. This crate defines the `.fgi` on-disk format
//! for that rule base and nothing else: writing is streaming (one
//! group at a time, constant memory beyond the open file), reading is
//! validating (magic, version, declared length, FNV-1a content
//! checksum, then structural checks on every record), and every way a
//! file can be unacceptable maps to a distinct [`StoreError`] variant
//! rather than a panic or a silently wrong result.
//!
//! # The `.fgi` format (version 1)
//!
//! All integers are little-endian. The file is a fixed 24-byte header
//! followed by one checksummed payload:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  b"FGIA"
//!      4     4  format version (u32) = 1
//!      8     8  payload length in bytes (u64)
//!     16     8  FNV-1a 64 checksum of the payload bytes (u64)
//!     24     –  payload
//! ```
//!
//! Payload layout:
//!
//! ```text
//! n_rows   u64            dataset row count (bitset capacity)
//! n_class  u32            class count
//! per class:              name (u32 len + UTF-8 bytes), row count u64
//! n_items  u32            item dictionary size
//! per item:               name (u32 len + UTF-8 bytes)
//! group records…          self-delimiting, see below
//! n_groups u32            trailing record count (cross-check)
//! ```
//!
//! Each group record: class `u32`; `sup`, `neg_sup`, `n_rows`,
//! `n_class` as `u64`; upper bound (`u32` count + ids); lower bounds
//! (`u32` count, each an id list); the row-support bitset (`u64`
//! capacity + `u32` word count + packed `u64` words, exactly
//! [`rowset::RowSet::words`]).
//!
//! The group count lives *after* the records so the writer can stream
//! groups without knowing how many are coming: at
//! [`ArtifactWriter::finish`] it appends the count, then seeks back
//! once to patch the payload length and checksum into the header. The
//! reader knows where the records end because the header declares the
//! payload length.
//!
//! # Ordering
//!
//! The format preserves whatever group order the writer was handed.
//! Callers that want run-independent bytes (the CLI's `--save-irgs`
//! does) sort with [`farmer_core::canonical_sort`] first; the
//! round-trip property tests pin `save → load` to reproduce
//! byte-identical [`farmer_core::dump_groups`] dumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod meta;
mod reader;
mod writer;

pub use error::StoreError;
pub use meta::ArtifactMeta;
pub use reader::{read_artifact, Artifact};
pub use writer::{save_artifact, ArtifactWriter};

/// The four magic bytes opening every `.fgi` file.
pub const MAGIC: [u8; 4] = *b"FGIA";

/// The current (and only) format version.
pub const VERSION: u32 = 1;

/// Size of the fixed header preceding the payload.
pub const HEADER_LEN: usize = 24;

/// Byte offset of the payload-length field within the header.
pub(crate) const LEN_OFFSET: u64 = 8;

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

//! Dataset-level metadata carried inside every artifact.

use farmer_dataset::{ClassLabel, Dataset};

/// What an artifact records about the dataset its groups were mined
/// from: enough to answer queries by item *name*, classify with a
/// majority-class fallback, and validate every stored bitset — without
/// the original transaction file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArtifactMeta {
    /// Rows in the mined dataset (the capacity of every stored
    /// row-support bitset).
    pub n_rows: u64,
    /// Class display names, indexed by class label.
    pub class_names: Vec<String>,
    /// Rows per class, parallel to `class_names`.
    pub class_counts: Vec<u64>,
    /// The interned item dictionary: display names indexed by item id.
    /// Group records store ids into this table.
    pub item_names: Vec<String>,
}

impl ArtifactMeta {
    /// Captures the metadata of `data`.
    pub fn from_dataset(data: &Dataset) -> Self {
        ArtifactMeta {
            n_rows: data.n_rows() as u64,
            class_names: (0..data.n_classes())
                .map(|c| data.class_name(c as ClassLabel).to_string())
                .collect(),
            class_counts: (0..data.n_classes())
                .map(|c| data.class_count(c as ClassLabel) as u64)
                .collect(),
            item_names: (0..data.n_items())
                .map(|i| data.item_name(i as u32).to_string())
                .collect(),
        }
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Number of items in the dictionary.
    pub fn n_items(&self) -> usize {
        self.item_names.len()
    }

    /// The majority class (ties to the smaller label) — the serving
    /// layer's default prediction when no group matches a sample,
    /// mirroring `RuleListClassifier`'s default-class convention.
    pub fn majority_class(&self) -> ClassLabel {
        self.class_counts
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i as ClassLabel)
            .unwrap_or(0)
    }

    /// Looks up an item id by display name.
    pub fn item_by_name(&self, name: &str) -> Option<u32> {
        self.item_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_dataset::DatasetBuilder;

    #[test]
    fn captures_dataset_shape() {
        let mut b = DatasetBuilder::new(2);
        b.add_row([0, 1], 0);
        b.add_row([1, 2], 1);
        b.add_row([0, 2], 1);
        let d = b.build();
        let m = ArtifactMeta::from_dataset(&d);
        assert_eq!(m.n_rows, 3);
        assert_eq!(m.n_classes(), 2);
        assert_eq!(m.class_counts, vec![1, 2]);
        assert_eq!(m.n_items(), 3);
        assert_eq!(m.majority_class(), 1);
        assert_eq!(m.item_by_name(d.item_name(2)), Some(2));
        assert_eq!(m.item_by_name("no-such-item"), None);
    }

    #[test]
    fn majority_ties_to_smaller_label() {
        let m = ArtifactMeta {
            n_rows: 4,
            class_names: vec!["a".into(), "b".into()],
            class_counts: vec![2, 2],
            item_names: vec![],
        };
        assert_eq!(m.majority_class(), 0);
    }
}

//! Atomic artifact publication.
//!
//! A live server memory-maps nothing — it re-reads the `.fgi` file on
//! reload — but a half-written artifact at the published path would
//! still fail that reload and leave a window where a *new* server could
//! not start. [`publish_artifact`] closes the window with the classic
//! write-temp / fsync / rename / fsync-dir sequence: at every instant
//! the published path holds either the previous complete artifact or
//! the new complete artifact, never a prefix of one, and after the
//! function returns the rename survives power loss.

use crate::{save_artifact_versioned, ArtifactMeta, Result, StoreError};
use farmer_core::RuleGroup;
use std::fs::File;
use std::path::{Path, PathBuf};

/// Writes `groups` as a complete artifact and atomically installs it at
/// `path`, returning the payload checksum.
///
/// The bytes go to a dot-prefixed temporary in the *same directory*
/// (renames are only atomic within a filesystem), are fsynced, and are
/// renamed over `path`; the directory is then fsynced so the rename
/// itself is durable. On any failure the temporary is removed and
/// `path` is left untouched.
pub fn publish_artifact(
    path: &Path,
    meta: &ArtifactMeta,
    groups: &[RuleGroup],
    version: u32,
) -> Result<u64> {
    let file_name = path
        .file_name()
        .ok_or_else(|| StoreError::corrupt(format!("publish path {path:?} has no file name")))?;
    let dir: PathBuf = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    };
    let tmp = dir.join(format!(
        ".{}.tmp.{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let installed = (|| -> Result<u64> {
        let checksum = save_artifact_versioned(&tmp, meta, groups, version)?;
        File::open(&tmp)?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(checksum)
    })();
    if installed.is_err() {
        let _ = std::fs::remove_file(&tmp);
        return installed;
    }
    // Make the rename itself durable. Failure here (some filesystems
    // refuse to open directories) leaves a published, readable artifact
    // whose directory entry merely isn't fsynced — not worth failing
    // the publish over.
    if let Ok(d) = File::open(&dir) {
        let _ = d.sync_all();
    }
    installed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Artifact, VERSION};

    fn tmp_dir() -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fgi-publish-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn meta() -> ArtifactMeta {
        ArtifactMeta {
            n_rows: 4,
            class_names: vec!["pos".into(), "neg".into()],
            class_counts: vec![2, 2],
            item_names: vec!["a".into(), "b".into()],
        }
    }

    #[test]
    fn publish_installs_a_loadable_artifact_and_leaves_no_temp() {
        let dir = tmp_dir();
        let path = dir.join("publish.fgi");
        let checksum = publish_artifact(&path, &meta(), &[], VERSION).unwrap();
        assert!(checksum != 0);
        let art = Artifact::load(&path).unwrap();
        assert_eq!(art.groups.len(), 0);
        assert_eq!(art.meta.n_rows, 4);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("publish.fgi.tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp file left behind: {leftovers:?}");
    }

    #[test]
    fn publish_replaces_an_existing_artifact_in_place() {
        let dir = tmp_dir();
        let path = dir.join("replace.fgi");
        let c1 = publish_artifact(&path, &meta(), &[], VERSION).unwrap();
        let mut m2 = meta();
        m2.n_rows = 5;
        m2.class_counts = vec![3, 2];
        let c2 = publish_artifact(&path, &m2, &[], VERSION).unwrap();
        assert_ne!(c1, c2);
        assert_eq!(Artifact::load(&path).unwrap().meta.n_rows, 5);
    }

    #[test]
    fn publish_rejects_a_directoryless_path() {
        let err = publish_artifact(Path::new(".."), &meta(), &[], VERSION).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }
}

//! Validating `.fgi` reader (v1 and v2).

use crate::{
    ArtifactMeta, Result, StoreError, CHUNK_BITS, HEADER_LEN, HEADER_LEN_V2, MAGIC, SECTION_DICT,
    SECTION_GROUPS, SECTION_TRAILER, VERSION, VERSION_V1,
};
use farmer_core::RuleGroup;
use farmer_support::hash::fnv1a;
use farmer_support::varint;
use rowset::{IdList, RowSet};
use std::path::Path;

/// A fully loaded, fully validated artifact.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Dataset-level metadata: dictionaries, class counts, row count.
    pub meta: ArtifactMeta,
    /// The stored rule groups, in file order.
    pub groups: Vec<RuleGroup>,
}

impl Artifact {
    /// Reads and validates the artifact at `path`.
    pub fn load(path: &Path) -> Result<Artifact> {
        read_artifact(&std::fs::read(path)?)
    }
}

/// Reads just the fixed header of the artifact at `path` and returns
/// its format version, validating magic and version support but not
/// the payload. The serving layer surfaces this in `/v1/healthz`
/// without re-parsing an artifact it has already loaded.
pub fn peek_version(path: &Path) -> Result<u32> {
    use std::io::Read;
    let mut head = Vec::with_capacity(HEADER_LEN);
    std::fs::File::open(path)?
        .take(HEADER_LEN as u64)
        .read_to_end(&mut head)?;
    if head.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            found: head.len() as u64,
        });
    }
    let magic: [u8; 4] = head[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if version != VERSION_V1 && version != VERSION {
        return Err(StoreError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    Ok(version)
}

/// Parses an artifact from bytes already in memory.
///
/// Validation happens outside-in: the fixed header first (truncation,
/// magic, version), then the declared payload length against the bytes
/// actually present, then the FNV-1a checksum over the whole payload,
/// and only then the payload's structure. A file that fails an outer
/// layer is reported by that layer's error — a truncated file is
/// [`StoreError::Truncated`] even though its checksum would not match
/// either.
pub fn read_artifact(bytes: &[u8]) -> Result<Artifact> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION_V1 && version != VERSION {
        return Err(StoreError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    let header_len = if version == VERSION_V1 {
        HEADER_LEN
    } else {
        HEADER_LEN_V2
    };
    if bytes.len() < header_len {
        return Err(StoreError::Truncated {
            expected: header_len as u64,
            found: bytes.len() as u64,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let stored = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let need = (header_len as u64).saturating_add(payload_len);
    let have = bytes.len() as u64;
    if have < need {
        return Err(StoreError::Truncated {
            expected: need,
            found: have,
        });
    }
    if have > need {
        return Err(StoreError::corrupt(format!(
            "{} bytes of trailing garbage after the declared payload",
            have - need
        )));
    }
    let payload = &bytes[header_len..];
    let computed = fnv1a(payload);
    if computed != stored {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    if version == VERSION_V1 {
        parse_payload(payload)
    } else {
        let table_offset = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        parse_payload_v2(payload, table_offset)
    }
}

/// Parses a payload whose envelope (length, checksum) already passed.
/// Every failure from here on is [`StoreError::Corrupt`].
fn parse_payload(payload: &[u8]) -> Result<Artifact> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let n_rows = c.u64("n_rows")?;
    let n_classes = c.u32("n_class")?;
    let mut class_names = Vec::new();
    let mut class_counts = Vec::new();
    for i in 0..n_classes {
        class_names.push(c.string(&format!("class {i} name"))?);
        class_counts.push(c.u64(&format!("class {i} count"))?);
    }
    let n_items = c.u32("n_items")?;
    let mut item_names = Vec::new();
    for i in 0..n_items {
        item_names.push(c.string(&format!("item {i} name"))?);
    }
    let meta = ArtifactMeta {
        n_rows,
        class_names,
        class_counts,
        item_names,
    };

    // Group records fill the payload up to the trailing 4-byte count.
    let mut groups = Vec::new();
    while c.remaining() > 4 {
        groups.push(read_group(&mut c, &meta, groups.len())?);
    }
    let declared = c.u32("trailing group count")?;
    if c.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} bytes left over after the trailing group count",
            c.remaining()
        )));
    }
    if declared as usize != groups.len() {
        return Err(StoreError::corrupt(format!(
            "trailing count says {declared} groups, file holds {}",
            groups.len()
        )));
    }
    Ok(Artifact { meta, groups })
}

fn read_group(c: &mut Cursor<'_>, meta: &ArtifactMeta, idx: usize) -> Result<RuleGroup> {
    let what = |field: &str| format!("group {idx} {field}");
    let class = c.u32(&what("class"))?;
    if class as usize >= meta.n_classes() {
        return Err(StoreError::corrupt(format!(
            "group {idx} class {class} outside the {}-class dictionary",
            meta.n_classes()
        )));
    }
    let sup = c.u64(&what("sup"))? as usize;
    let neg_sup = c.u64(&what("neg_sup"))? as usize;
    let g_rows = c.u64(&what("n_rows"))? as usize;
    let g_class = c.u64(&what("n_class"))? as usize;
    let upper = read_ids(c, meta, &what("upper"))?;
    let n_lower = c.u32(&what("lower count"))?;
    let mut lower = Vec::new();
    for l in 0..n_lower {
        lower.push(read_ids(c, meta, &what(&format!("lower {l}")))?);
    }
    let capacity = c.u64(&what("bitset capacity"))?;
    if capacity != meta.n_rows {
        return Err(StoreError::corrupt(format!(
            "group {idx} bitset capacity {capacity} != dataset rows {}",
            meta.n_rows
        )));
    }
    let n_words = c.u32(&what("bitset word count"))?;
    let mut words = Vec::with_capacity(n_words as usize);
    for _ in 0..n_words {
        words.push(c.u64(&what("bitset word"))?);
    }
    let support_set = RowSet::from_words(capacity as usize, words)
        .map_err(|e| StoreError::corrupt(format!("group {idx} bitset: {e}")))?;
    if support_set.len() != sup + neg_sup {
        return Err(StoreError::corrupt(format!(
            "group {idx} bitset holds {} rows but sup {sup} + neg_sup {neg_sup}",
            support_set.len()
        )));
    }
    Ok(RuleGroup {
        upper,
        lower,
        support_set,
        sup,
        neg_sup,
        class,
        n_rows: g_rows,
        n_class: g_class,
    })
}

fn read_ids(c: &mut Cursor<'_>, meta: &ArtifactMeta, what: &str) -> Result<IdList> {
    let n = c.u32(&format!("{what} count"))?;
    let mut ids = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let id = c.u32(what)?;
        if id as usize >= meta.n_items() {
            return Err(StoreError::corrupt(format!(
                "{what}: item {id} outside the {}-item dictionary",
                meta.n_items()
            )));
        }
        ids.push(id);
    }
    // IdList's merge algebra requires strictly ascending ids; the writer
    // always stores them that way, so anything else is corruption.
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(StoreError::corrupt(format!(
            "{what}: item ids not strictly ascending"
        )));
    }
    Ok(IdList::from_sorted(ids))
}

/// One entry of the v2 section table.
struct Section {
    id: u8,
    offset: u64,
    len: u64,
}

/// Parses a v2 payload whose envelope already passed: section table
/// first (bounds-checked against the header's table offset), then each
/// section through a cursor confined to exactly its declared byte
/// range.
fn parse_payload_v2(payload: &[u8], table_offset: u64) -> Result<Artifact> {
    // --- section table ---------------------------------------------------
    let plen = payload.len() as u64;
    if table_offset > plen {
        return Err(StoreError::corrupt(format!(
            "section table offset {table_offset} beyond the {plen}-byte payload"
        )));
    }
    let mut t = Cursor {
        buf: payload,
        pos: table_offset as usize,
    };
    let n_sections = t.u8("section count")?;
    let mut sections = Vec::new();
    for i in 0..n_sections {
        let what = format!("section table entry {i}");
        sections.push(Section {
            id: t.u8(&what)?,
            offset: t.u64(&what)?,
            len: t.u64(&what)?,
        });
    }
    if t.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} bytes left over after the section table",
            t.remaining()
        )));
    }
    // Exactly the three known sections, in order, contiguous from
    // offset 0, ending at the table.
    let expect = [SECTION_DICT, SECTION_GROUPS, SECTION_TRAILER];
    if sections.len() != expect.len() {
        return Err(StoreError::corrupt(format!(
            "section table holds {} sections, expected {}",
            sections.len(),
            expect.len()
        )));
    }
    let mut at = 0u64;
    for (s, &want) in sections.iter().zip(&expect) {
        if s.id != want {
            return Err(StoreError::corrupt(format!(
                "section id {} where section {want} belongs",
                s.id
            )));
        }
        if s.offset != at {
            return Err(StoreError::corrupt(format!(
                "section {} starts at {} instead of {at}",
                s.id, s.offset
            )));
        }
        at = at
            .checked_add(s.len)
            .ok_or_else(|| StoreError::corrupt(format!("section {} length overflows", s.id)))?;
    }
    if at != table_offset {
        return Err(StoreError::corrupt(format!(
            "sections end at {at} but the table starts at {table_offset}"
        )));
    }
    let range = |s: &Section| &payload[s.offset as usize..(s.offset + s.len) as usize];

    // --- DICT -------------------------------------------------------------
    let mut c = Cursor {
        buf: range(&sections[0]),
        pos: 0,
    };
    let n_rows = c.varint("n_rows")?;
    let n_classes = c.varint("class count")?;
    if n_classes > sections[0].len {
        return Err(StoreError::corrupt(format!(
            "class count {n_classes} larger than the dictionary section"
        )));
    }
    let mut class_names = Vec::with_capacity(n_classes as usize);
    let mut class_counts = Vec::with_capacity(n_classes as usize);
    for i in 0..n_classes {
        class_names.push(c.varint_string(&format!("class {i} name"))?);
        class_counts.push(c.varint(&format!("class {i} count"))?);
    }
    let n_items = c.varint("item count")?;
    if n_items > sections[0].len {
        return Err(StoreError::corrupt(format!(
            "item count {n_items} larger than the dictionary section"
        )));
    }
    let mut item_names: Vec<String> = Vec::with_capacity(n_items as usize);
    for i in 0..n_items {
        let what = format!("item {i} name");
        let shared = c.varint(&what)? as usize;
        let prev: &str = item_names.last().map_or("", String::as_str);
        if shared > prev.len() || !prev.is_char_boundary(shared) {
            return Err(StoreError::corrupt(format!(
                "{what}: shared prefix {shared} exceeds the previous name"
            )));
        }
        let suffix = c.varint_string(&what)?;
        let mut name = String::with_capacity(shared + suffix.len());
        name.push_str(&prev[..shared]);
        name.push_str(&suffix);
        item_names.push(name);
    }
    if c.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} bytes left over after the item dictionary",
            c.remaining()
        )));
    }
    let meta = ArtifactMeta {
        n_rows,
        class_names,
        class_counts,
        item_names,
    };

    // --- TRAILER (read before GROUPS so the count bounds the loop) --------
    let mut tr = Cursor {
        buf: range(&sections[2]),
        pos: 0,
    };
    let declared = tr.varint("trailing group count")?;
    if tr.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} bytes left over after the trailing group count",
            tr.remaining()
        )));
    }

    // --- GROUPS -----------------------------------------------------------
    let mut gc = Cursor {
        buf: range(&sections[1]),
        pos: 0,
    };
    let mut groups = Vec::new();
    while gc.remaining() > 0 {
        if groups.len() as u64 == declared {
            return Err(StoreError::corrupt(format!(
                "{} bytes of group records beyond the declared {declared} groups",
                gc.remaining()
            )));
        }
        groups.push(read_group_v2(&mut gc, &meta, groups.len())?);
    }
    if declared != groups.len() as u64 {
        return Err(StoreError::corrupt(format!(
            "trailing count says {declared} groups, file holds {}",
            groups.len()
        )));
    }
    Ok(Artifact { meta, groups })
}

fn read_group_v2(c: &mut Cursor<'_>, meta: &ArtifactMeta, idx: usize) -> Result<RuleGroup> {
    let what = |field: &str| format!("group {idx} {field}");
    let head = c.varint(&what("class"))?;
    let class = (head >> 1) as u32;
    let eq_lower = head & 1 == 1;
    if class as usize >= meta.n_classes() {
        return Err(StoreError::corrupt(format!(
            "group {idx} class {class} outside the {}-class dictionary",
            meta.n_classes()
        )));
    }
    let sup = c.varint(&what("sup"))? as usize;
    let upper_ids = read_id_deltas(c, meta.n_items() as u64, &what("upper"))?;
    let lower = if eq_lower {
        vec![IdList::from_sorted(upper_ids.clone())]
    } else {
        let n_lower = c.varint(&what("lower count"))?;
        if n_lower > c.remaining() as u64 + 1 {
            return Err(StoreError::corrupt(format!(
                "group {idx} lower count {n_lower} larger than the groups section"
            )));
        }
        let mut lower = Vec::with_capacity(n_lower as usize);
        for l in 0..n_lower {
            let what = what(&format!("lower {l}"));
            let positions = read_id_deltas(c, upper_ids.len() as u64, &what)?;
            lower.push(IdList::from_sorted(
                positions.iter().map(|&p| upper_ids[p as usize]).collect(),
            ));
        }
        lower
    };
    let upper = IdList::from_sorted(upper_ids);
    let support_set = read_rowset_v2(c, meta.n_rows as usize, &what("rowset"))?;
    let covered = support_set.len();
    if sup > covered {
        return Err(StoreError::corrupt(format!(
            "group {idx} sup {sup} exceeds the {covered} rows in its bitset"
        )));
    }
    Ok(RuleGroup {
        upper,
        lower,
        support_set,
        sup,
        neg_sup: covered - sup,
        class,
        n_rows: meta.n_rows as usize,
        n_class: meta.class_counts[class as usize] as usize,
    })
}

/// Decodes a delta-coded strictly ascending id list; every id must be
/// `< universe`.
fn read_id_deltas(c: &mut Cursor<'_>, universe: u64, what: &str) -> Result<Vec<u32>> {
    let n = c.varint(&format!("{what} count"))?;
    if n > universe {
        return Err(StoreError::corrupt(format!(
            "{what}: {n} ids cannot be strictly ascending below {universe}"
        )));
    }
    let mut ids = Vec::with_capacity(n as usize);
    let mut prev: u64 = 0;
    for i in 0..n {
        let delta = c.varint(what)?;
        let id = if i == 0 { delta } else { prev + 1 + delta };
        if id >= universe {
            return Err(StoreError::corrupt(format!(
                "{what}: id {id} outside the {universe}-entry universe"
            )));
        }
        ids.push(id as u32);
        prev = id;
    }
    Ok(ids)
}

/// Decodes the run/verbatim hybrid rowset chunks back into a
/// [`RowSet`] of exactly `cap` rows.
fn read_rowset_v2(c: &mut Cursor<'_>, cap: usize, what: &str) -> Result<RowSet> {
    let mut words = vec![0u64; cap.div_ceil(64)];
    let n_chunks = cap.div_ceil(CHUNK_BITS);
    for chunk in 0..n_chunks {
        let base = chunk * CHUNK_BITS;
        let bits = (cap - base).min(CHUNK_BITS);
        let what = format!("{what} chunk {chunk}");
        match c.u8(&what)? {
            0 => {
                let n_bytes = c.varint(&what)? as usize;
                if n_bytes > bits.div_ceil(8) {
                    return Err(StoreError::corrupt(format!(
                        "{what}: {n_bytes} verbatim bytes for a {bits}-bit chunk"
                    )));
                }
                let bytes = c.take(n_bytes, &what)?;
                for (i, &b) in bytes.iter().enumerate() {
                    words[base / 64 + i / 8] |= (b as u64) << (8 * (i % 8));
                }
            }
            1 => {
                let n_runs = c.varint(&what)?;
                if n_runs > bits as u64 {
                    return Err(StoreError::corrupt(format!(
                        "{what}: {n_runs} runs in a {bits}-bit chunk"
                    )));
                }
                let mut at = 0usize;
                for _ in 0..n_runs {
                    let gap = c.varint(&what)? as usize;
                    let len = c.varint(&what)? as usize + 1;
                    let start = at.checked_add(gap).ok_or_else(|| {
                        StoreError::corrupt(format!("{what}: run start overflows"))
                    })?;
                    let end = start.checked_add(len).ok_or_else(|| {
                        StoreError::corrupt(format!("{what}: run length overflows"))
                    })?;
                    if end > bits {
                        return Err(StoreError::corrupt(format!(
                            "{what}: run [{start}, {end}) beyond the {bits}-bit chunk"
                        )));
                    }
                    for bit in start..end {
                        let abs = base + bit;
                        words[abs / 64] |= 1u64 << (abs % 64);
                    }
                    at = end;
                }
            }
            tag => {
                return Err(StoreError::corrupt(format!(
                    "{what}: unknown chunk tag {tag}"
                )));
            }
        }
    }
    RowSet::from_words(cap, words).map_err(|e| StoreError::corrupt(format!("{what}: {e}")))
}

/// Bounds-checked little-endian reads over the payload. Running off
/// the end is always `Corrupt` (never a panic): the envelope already
/// proved the byte count matches what the writer declared, so an
/// overrun means the structure lies about itself.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(format!(
                "payload ends inside {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{what}: invalid UTF-8")))
    }

    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// A LEB128 varint; truncated or overlong encodings are `Corrupt`.
    fn varint(&mut self, what: &str) -> Result<u64> {
        match varint::read_u64(&self.buf[self.pos..]) {
            Some((v, used)) => {
                self.pos += used;
                Ok(v)
            }
            None => Err(StoreError::corrupt(format!(
                "payload ends inside {what}: invalid varint at offset {}",
                self.pos
            ))),
        }
    }

    /// A varint-length-prefixed UTF-8 string.
    fn varint_string(&mut self, what: &str) -> Result<String> {
        let len = self.varint(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{what}: invalid UTF-8")))
    }
}

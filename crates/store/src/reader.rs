//! Validating `.fgi` reader.

use crate::{ArtifactMeta, Result, StoreError, HEADER_LEN, MAGIC, VERSION};
use farmer_core::RuleGroup;
use farmer_support::hash::fnv1a;
use rowset::{IdList, RowSet};
use std::path::Path;

/// A fully loaded, fully validated artifact.
#[derive(Clone, Debug)]
pub struct Artifact {
    /// Dataset-level metadata: dictionaries, class counts, row count.
    pub meta: ArtifactMeta,
    /// The stored rule groups, in file order.
    pub groups: Vec<RuleGroup>,
}

impl Artifact {
    /// Reads and validates the artifact at `path`.
    pub fn load(path: &Path) -> Result<Artifact> {
        read_artifact(&std::fs::read(path)?)
    }
}

/// Parses an artifact from bytes already in memory.
///
/// Validation happens outside-in: the fixed header first (truncation,
/// magic, version), then the declared payload length against the bytes
/// actually present, then the FNV-1a checksum over the whole payload,
/// and only then the payload's structure. A file that fails an outer
/// layer is reported by that layer's error — a truncated file is
/// [`StoreError::Truncated`] even though its checksum would not match
/// either.
pub fn read_artifact(bytes: &[u8]) -> Result<Artifact> {
    if bytes.len() < HEADER_LEN {
        return Err(StoreError::Truncated {
            expected: HEADER_LEN as u64,
            found: bytes.len() as u64,
        });
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != MAGIC {
        return Err(StoreError::BadMagic { found: magic });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != VERSION {
        return Err(StoreError::VersionSkew {
            found: version,
            supported: VERSION,
        });
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let stored = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
    let need = (HEADER_LEN as u64).saturating_add(payload_len);
    let have = bytes.len() as u64;
    if have < need {
        return Err(StoreError::Truncated {
            expected: need,
            found: have,
        });
    }
    if have > need {
        return Err(StoreError::corrupt(format!(
            "{} bytes of trailing garbage after the declared payload",
            have - need
        )));
    }
    let payload = &bytes[HEADER_LEN..];
    let computed = fnv1a(payload);
    if computed != stored {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    parse_payload(payload)
}

/// Parses a payload whose envelope (length, checksum) already passed.
/// Every failure from here on is [`StoreError::Corrupt`].
fn parse_payload(payload: &[u8]) -> Result<Artifact> {
    let mut c = Cursor {
        buf: payload,
        pos: 0,
    };
    let n_rows = c.u64("n_rows")?;
    let n_classes = c.u32("n_class")?;
    let mut class_names = Vec::new();
    let mut class_counts = Vec::new();
    for i in 0..n_classes {
        class_names.push(c.string(&format!("class {i} name"))?);
        class_counts.push(c.u64(&format!("class {i} count"))?);
    }
    let n_items = c.u32("n_items")?;
    let mut item_names = Vec::new();
    for i in 0..n_items {
        item_names.push(c.string(&format!("item {i} name"))?);
    }
    let meta = ArtifactMeta {
        n_rows,
        class_names,
        class_counts,
        item_names,
    };

    // Group records fill the payload up to the trailing 4-byte count.
    let mut groups = Vec::new();
    while c.remaining() > 4 {
        groups.push(read_group(&mut c, &meta, groups.len())?);
    }
    let declared = c.u32("trailing group count")?;
    if c.remaining() != 0 {
        return Err(StoreError::corrupt(format!(
            "{} bytes left over after the trailing group count",
            c.remaining()
        )));
    }
    if declared as usize != groups.len() {
        return Err(StoreError::corrupt(format!(
            "trailing count says {declared} groups, file holds {}",
            groups.len()
        )));
    }
    Ok(Artifact { meta, groups })
}

fn read_group(c: &mut Cursor<'_>, meta: &ArtifactMeta, idx: usize) -> Result<RuleGroup> {
    let what = |field: &str| format!("group {idx} {field}");
    let class = c.u32(&what("class"))?;
    if class as usize >= meta.n_classes() {
        return Err(StoreError::corrupt(format!(
            "group {idx} class {class} outside the {}-class dictionary",
            meta.n_classes()
        )));
    }
    let sup = c.u64(&what("sup"))? as usize;
    let neg_sup = c.u64(&what("neg_sup"))? as usize;
    let g_rows = c.u64(&what("n_rows"))? as usize;
    let g_class = c.u64(&what("n_class"))? as usize;
    let upper = read_ids(c, meta, &what("upper"))?;
    let n_lower = c.u32(&what("lower count"))?;
    let mut lower = Vec::new();
    for l in 0..n_lower {
        lower.push(read_ids(c, meta, &what(&format!("lower {l}")))?);
    }
    let capacity = c.u64(&what("bitset capacity"))?;
    if capacity != meta.n_rows {
        return Err(StoreError::corrupt(format!(
            "group {idx} bitset capacity {capacity} != dataset rows {}",
            meta.n_rows
        )));
    }
    let n_words = c.u32(&what("bitset word count"))?;
    let mut words = Vec::with_capacity(n_words as usize);
    for _ in 0..n_words {
        words.push(c.u64(&what("bitset word"))?);
    }
    let support_set = RowSet::from_words(capacity as usize, words)
        .map_err(|e| StoreError::corrupt(format!("group {idx} bitset: {e}")))?;
    if support_set.len() != sup + neg_sup {
        return Err(StoreError::corrupt(format!(
            "group {idx} bitset holds {} rows but sup {sup} + neg_sup {neg_sup}",
            support_set.len()
        )));
    }
    Ok(RuleGroup {
        upper,
        lower,
        support_set,
        sup,
        neg_sup,
        class,
        n_rows: g_rows,
        n_class: g_class,
    })
}

fn read_ids(c: &mut Cursor<'_>, meta: &ArtifactMeta, what: &str) -> Result<IdList> {
    let n = c.u32(&format!("{what} count"))?;
    let mut ids = Vec::with_capacity(n as usize);
    for _ in 0..n {
        let id = c.u32(what)?;
        if id as usize >= meta.n_items() {
            return Err(StoreError::corrupt(format!(
                "{what}: item {id} outside the {}-item dictionary",
                meta.n_items()
            )));
        }
        ids.push(id);
    }
    // IdList's merge algebra requires strictly ascending ids; the writer
    // always stores them that way, so anything else is corruption.
    if !ids.windows(2).all(|w| w[0] < w[1]) {
        return Err(StoreError::corrupt(format!(
            "{what}: item ids not strictly ascending"
        )));
    }
    Ok(IdList::from_sorted(ids))
}

/// Bounds-checked little-endian reads over the payload. Running off
/// the end is always `Corrupt` (never a panic): the envelope already
/// proved the byte count matches what the writer declared, so an
/// overrun means the structure lies about itself.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::corrupt(format!(
                "payload ends inside {what}: need {n} bytes at offset {}, have {}",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self, what: &str) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().unwrap()))
    }

    fn u64(&mut self, what: &str) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String> {
        let len = self.u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StoreError::corrupt(format!("{what}: invalid UTF-8")))
    }
}

//! Streaming `.fgi` writer.

use crate::{ArtifactMeta, Result, StoreError, HEADER_LEN, LEN_OFFSET, MAGIC, VERSION};
use farmer_core::RuleGroup;
use farmer_support::hash::Fnv1a;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Writes an artifact one group at a time.
///
/// The header goes out first with zeroed length/checksum fields; every
/// payload byte is folded into a running FNV-1a as it is written; and
/// [`finish`](Self::finish) appends the trailing group count, then
/// seeks back exactly once to patch the header. Memory use is constant
/// in the number of groups.
pub struct ArtifactWriter<W: Write + Seek> {
    w: W,
    hasher: Fnv1a,
    payload_len: u64,
    n_groups: u32,
    // dictionary shape, for validating groups as they stream through
    n_rows: u64,
    n_classes: u32,
    n_items: u32,
}

impl<W: Write + Seek> ArtifactWriter<W> {
    /// Opens the stream: writes the placeholder header and the
    /// dictionary sections of `meta`.
    pub fn new(mut w: W, meta: &ArtifactMeta) -> Result<Self> {
        w.write_all(&MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?; // payload_len, patched in finish
        w.write_all(&0u64.to_le_bytes())?; // checksum, patched in finish
        let mut this = ArtifactWriter {
            w,
            hasher: Fnv1a::new(),
            payload_len: 0,
            n_groups: 0,
            n_rows: meta.n_rows,
            n_classes: meta.n_classes() as u32,
            n_items: meta.n_items() as u32,
        };
        this.put_u64(meta.n_rows)?;
        this.put_u32(this.n_classes)?;
        for (name, &count) in meta.class_names.iter().zip(&meta.class_counts) {
            this.put_str(name)?;
            this.put_u64(count)?;
        }
        debug_assert_eq!(meta.class_names.len(), meta.class_counts.len());
        this.put_u32(this.n_items)?;
        for name in &meta.item_names {
            this.put_str(name)?;
        }
        Ok(this)
    }

    /// Appends one group record. Groups must refer only to the
    /// dictionary the writer was opened with; a group that does not is
    /// rejected here (as [`StoreError::Corrupt`]) instead of producing
    /// a file the reader would reject later.
    pub fn write_group(&mut self, g: &RuleGroup) -> Result<()> {
        if g.class >= self.n_classes {
            return Err(StoreError::corrupt(format!(
                "group class {} outside the {}-class dictionary",
                g.class, self.n_classes
            )));
        }
        for items in std::iter::once(&g.upper).chain(&g.lower) {
            if let Some(bad) = items.iter().find(|&i| i >= self.n_items) {
                return Err(StoreError::corrupt(format!(
                    "group item {bad} outside the {}-item dictionary",
                    self.n_items
                )));
            }
        }
        if g.support_set.capacity() as u64 != self.n_rows {
            return Err(StoreError::corrupt(format!(
                "group bitset capacity {} != dataset rows {}",
                g.support_set.capacity(),
                self.n_rows
            )));
        }
        self.put_u32(g.class)?;
        self.put_u64(g.sup as u64)?;
        self.put_u64(g.neg_sup as u64)?;
        self.put_u64(g.n_rows as u64)?;
        self.put_u64(g.n_class as u64)?;
        self.put_ids(&g.upper)?;
        self.put_u32(g.lower.len() as u32)?;
        for l in &g.lower {
            self.put_ids(l)?;
        }
        let words = g.support_set.words();
        self.put_u64(g.support_set.capacity() as u64)?;
        self.put_u32(words.len() as u32)?;
        for &w in words {
            self.put_u64(w)?;
        }
        self.n_groups += 1;
        Ok(())
    }

    /// Appends the trailing group count, patches the header's payload
    /// length and checksum, and flushes. Returns the content checksum.
    pub fn finish(mut self) -> Result<u64> {
        let n = self.n_groups;
        self.put_u32(n)?;
        let checksum = self.hasher.finish();
        self.w.seek(SeekFrom::Start(LEN_OFFSET))?;
        self.w.write_all(&self.payload_len.to_le_bytes())?;
        self.w.write_all(&checksum.to_le_bytes())?;
        self.w.flush()?;
        Ok(checksum)
    }

    /// Total bytes this writer will have produced if finished now
    /// (header + payload so far + the 4-byte trailer).
    pub fn bytes_written(&self) -> u64 {
        HEADER_LEN as u64 + self.payload_len
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.w.write_all(bytes)?;
        self.hasher.write(bytes);
        self.payload_len += bytes.len() as u64;
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_str(&mut self, s: &str) -> Result<()> {
        self.put_u32(s.len() as u32)?;
        self.put(s.as_bytes())
    }

    fn put_ids(&mut self, ids: &rowset::IdList) -> Result<()> {
        self.put_u32(ids.len() as u32)?;
        for id in ids.iter() {
            self.put_u32(id)?;
        }
        Ok(())
    }
}

/// Writes `groups` to `path` in one call, creating or replacing the
/// file. Returns the content checksum.
pub fn save_artifact(path: &Path, meta: &ArtifactMeta, groups: &[RuleGroup]) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = ArtifactWriter::new(std::io::BufWriter::new(file), meta)?;
    for g in groups {
        w.write_group(g)?;
    }
    w.finish()
}

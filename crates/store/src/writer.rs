//! Streaming `.fgi` writer (v1 and v2).

use crate::{
    ArtifactMeta, Result, StoreError, CHUNK_BITS, HEADER_LEN, HEADER_LEN_V2, LEN_OFFSET, MAGIC,
    SECTION_DICT, SECTION_GROUPS, SECTION_TRAILER, VERSION, VERSION_V1,
};
use farmer_core::RuleGroup;
use farmer_support::hash::Fnv1a;
use farmer_support::varint;
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

/// Writes an artifact one group at a time.
///
/// The header goes out first with zeroed length/checksum fields; every
/// payload byte is folded into a running FNV-1a as it is written; and
/// [`finish`](Self::finish) appends the trailing group count (v2: plus
/// the section table), then seeks back exactly once to patch the
/// header. Memory use is constant in the number of groups.
pub struct ArtifactWriter<W: Write + Seek> {
    w: W,
    version: u32,
    hasher: Fnv1a,
    payload_len: u64,
    n_groups: u64,
    /// End of the v2 DICT section (== start of GROUPS).
    dict_end: u64,
    // dictionary shape, for validating groups as they stream through
    n_rows: u64,
    n_classes: u32,
    n_items: u32,
    /// Per-class row counts; v2 derives each group's `n_class` from
    /// these at read time, so the writer must hold groups to them.
    class_counts: Vec<u64>,
}

impl<W: Write + Seek> ArtifactWriter<W> {
    /// Opens a current-version (v2) stream: writes the placeholder
    /// header and the dictionary section of `meta`.
    pub fn new(w: W, meta: &ArtifactMeta) -> Result<Self> {
        Self::new_versioned(w, meta, VERSION)
    }

    /// Opens a stream in an explicit format version (1 or 2). Any
    /// other version is [`StoreError::VersionSkew`].
    pub fn new_versioned(mut w: W, meta: &ArtifactMeta, version: u32) -> Result<Self> {
        if version != VERSION_V1 && version != VERSION {
            return Err(StoreError::VersionSkew {
                found: version,
                supported: VERSION,
            });
        }
        w.write_all(&MAGIC)?;
        w.write_all(&version.to_le_bytes())?;
        w.write_all(&0u64.to_le_bytes())?; // payload_len, patched in finish
        w.write_all(&0u64.to_le_bytes())?; // checksum, patched in finish
        if version == VERSION {
            w.write_all(&0u64.to_le_bytes())?; // table offset, patched in finish
        }
        let mut this = ArtifactWriter {
            w,
            version,
            hasher: Fnv1a::new(),
            payload_len: 0,
            n_groups: 0,
            dict_end: 0,
            n_rows: meta.n_rows,
            n_classes: meta.n_classes() as u32,
            n_items: meta.n_items() as u32,
            class_counts: meta.class_counts.clone(),
        };
        debug_assert_eq!(meta.class_names.len(), meta.class_counts.len());
        if version == VERSION_V1 {
            this.put_u64(meta.n_rows)?;
            this.put_u32(this.n_classes)?;
            for (name, &count) in meta.class_names.iter().zip(&meta.class_counts) {
                this.put_str(name)?;
                this.put_u64(count)?;
            }
            this.put_u32(this.n_items)?;
            for name in &meta.item_names {
                this.put_str(name)?;
            }
        } else {
            let mut dict = Vec::new();
            varint::write_u64(&mut dict, meta.n_rows);
            varint::write_u64(&mut dict, this.n_classes as u64);
            for (name, &count) in meta.class_names.iter().zip(&meta.class_counts) {
                varint::write_u64(&mut dict, name.len() as u64);
                dict.extend_from_slice(name.as_bytes());
                varint::write_u64(&mut dict, count);
            }
            varint::write_u64(&mut dict, this.n_items as u64);
            let mut prev: &str = "";
            for name in &meta.item_names {
                let shared = name
                    .bytes()
                    .zip(prev.bytes())
                    .take_while(|(a, b)| a == b)
                    .count();
                // never split a UTF-8 sequence: back off to a char
                // boundary so the suffix stays valid UTF-8 on its own
                let shared = (0..=shared)
                    .rev()
                    .find(|&s| name.is_char_boundary(s))
                    .unwrap_or(0);
                varint::write_u64(&mut dict, shared as u64);
                varint::write_u64(&mut dict, (name.len() - shared) as u64);
                dict.extend_from_slice(&name.as_bytes()[shared..]);
                prev = name;
            }
            this.put(&dict)?;
            this.dict_end = this.payload_len;
        }
        Ok(this)
    }

    /// The format version this writer emits.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Appends one group record. Groups must refer only to the
    /// dictionary the writer was opened with; a group that does not is
    /// rejected here (as [`StoreError::Corrupt`]) instead of producing
    /// a file the reader would reject later. Under v2 the derived
    /// fields must also hold (`n_rows`/`n_class` matching the
    /// dictionary, `neg_sup == |support| − sup`, lower bounds ⊆ upper
    /// bound): v2 does not store them, so a group breaking those
    /// identities is unrepresentable.
    pub fn write_group(&mut self, g: &RuleGroup) -> Result<()> {
        if g.class >= self.n_classes {
            return Err(StoreError::corrupt(format!(
                "group class {} outside the {}-class dictionary",
                g.class, self.n_classes
            )));
        }
        for items in std::iter::once(&g.upper).chain(&g.lower) {
            if let Some(bad) = items.iter().find(|&i| i >= self.n_items) {
                return Err(StoreError::corrupt(format!(
                    "group item {bad} outside the {}-item dictionary",
                    self.n_items
                )));
            }
        }
        if g.support_set.capacity() as u64 != self.n_rows {
            return Err(StoreError::corrupt(format!(
                "group bitset capacity {} != dataset rows {}",
                g.support_set.capacity(),
                self.n_rows
            )));
        }
        if self.version == VERSION_V1 {
            self.write_group_v1(g)?;
        } else {
            self.write_group_v2(g)?;
        }
        self.n_groups += 1;
        Ok(())
    }

    fn write_group_v1(&mut self, g: &RuleGroup) -> Result<()> {
        self.put_u32(g.class)?;
        self.put_u64(g.sup as u64)?;
        self.put_u64(g.neg_sup as u64)?;
        self.put_u64(g.n_rows as u64)?;
        self.put_u64(g.n_class as u64)?;
        self.put_ids(&g.upper)?;
        self.put_u32(g.lower.len() as u32)?;
        for l in &g.lower {
            self.put_ids(l)?;
        }
        let words = g.support_set.words();
        self.put_u64(g.support_set.capacity() as u64)?;
        self.put_u32(words.len() as u32)?;
        for &w in words {
            self.put_u64(w)?;
        }
        Ok(())
    }

    fn write_group_v2(&mut self, g: &RuleGroup) -> Result<()> {
        // v2 derives these at read time; refuse to write a group the
        // reader would reconstruct differently.
        if g.n_rows as u64 != self.n_rows {
            return Err(StoreError::corrupt(format!(
                "v2 cannot store group n_rows {} != dataset rows {}",
                g.n_rows, self.n_rows
            )));
        }
        if g.n_class as u64 != self.class_counts[g.class as usize] {
            return Err(StoreError::corrupt(format!(
                "v2 cannot store group n_class {} != class {} row count {}",
                g.n_class, g.class, self.class_counts[g.class as usize]
            )));
        }
        if g.sup + g.neg_sup != g.support_set.len() {
            return Err(StoreError::corrupt(format!(
                "v2 cannot store sup {} + neg_sup {} != bitset rows {}",
                g.sup,
                g.neg_sup,
                g.support_set.len()
            )));
        }
        let upper: Vec<u32> = g.upper.iter().collect();
        let eq = g.lower.len() == 1 && g.lower[0].iter().eq(g.upper.iter());
        let mut rec = Vec::new();
        varint::write_u64(&mut rec, (g.class as u64) << 1 | eq as u64);
        varint::write_u64(&mut rec, g.sup as u64);
        encode_id_deltas(&mut rec, &upper);
        if !eq {
            varint::write_u64(&mut rec, g.lower.len() as u64);
            for l in &g.lower {
                let mut positions = Vec::with_capacity(l.len());
                for id in l.iter() {
                    match upper.binary_search(&id) {
                        Ok(p) => positions.push(p as u32),
                        Err(_) => {
                            return Err(StoreError::corrupt(format!(
                                "v2 cannot store lower bound item {id} \
                                 missing from the group's upper bound"
                            )));
                        }
                    }
                }
                encode_id_deltas(&mut rec, &positions);
            }
        }
        encode_rowset(&mut rec, &g.support_set);
        self.put(&rec)
    }

    /// Appends the trailing group count (v2: and the section table),
    /// patches the header, and flushes. Returns the content checksum.
    pub fn finish(mut self) -> Result<u64> {
        if self.version == VERSION_V1 {
            let n = self.n_groups as u32;
            self.put_u32(n)?;
            let checksum = self.hasher.finish();
            self.w.seek(SeekFrom::Start(LEN_OFFSET))?;
            self.w.write_all(&self.payload_len.to_le_bytes())?;
            self.w.write_all(&checksum.to_le_bytes())?;
            self.w.flush()?;
            return Ok(checksum);
        }
        let groups_end = self.payload_len;
        let mut trailer = Vec::new();
        varint::write_u64(&mut trailer, self.n_groups);
        self.put(&trailer)?;
        let table_offset = self.payload_len;
        let mut table = Vec::new();
        table.push(3u8);
        for (id, offset, len) in [
            (SECTION_DICT, 0, self.dict_end),
            (SECTION_GROUPS, self.dict_end, groups_end - self.dict_end),
            (SECTION_TRAILER, groups_end, table_offset - groups_end),
        ] {
            table.push(id);
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&len.to_le_bytes());
        }
        self.put(&table)?;
        let checksum = self.hasher.finish();
        self.w.seek(SeekFrom::Start(LEN_OFFSET))?;
        self.w.write_all(&self.payload_len.to_le_bytes())?;
        self.w.write_all(&checksum.to_le_bytes())?;
        self.w.write_all(&table_offset.to_le_bytes())?;
        self.w.flush()?;
        Ok(checksum)
    }

    /// Total bytes this writer has produced so far (header + payload).
    pub fn bytes_written(&self) -> u64 {
        let header = if self.version == VERSION_V1 {
            HEADER_LEN
        } else {
            HEADER_LEN_V2
        };
        header as u64 + self.payload_len
    }

    fn put(&mut self, bytes: &[u8]) -> Result<()> {
        self.w.write_all(bytes)?;
        self.hasher.write(bytes);
        self.payload_len += bytes.len() as u64;
        Ok(())
    }

    fn put_u32(&mut self, v: u32) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_str(&mut self, s: &str) -> Result<()> {
        self.put_u32(s.len() as u32)?;
        self.put(s.as_bytes())
    }

    fn put_ids(&mut self, ids: &rowset::IdList) -> Result<()> {
        self.put_u32(ids.len() as u32)?;
        for id in ids.iter() {
            self.put_u32(id)?;
        }
        Ok(())
    }
}

/// Delta-codes a strictly ascending id list: varint count, varint
/// first, then varint `gap − 1` per subsequent id.
fn encode_id_deltas(out: &mut Vec<u8>, ids: &[u32]) {
    varint::write_u64(out, ids.len() as u64);
    for (i, &id) in ids.iter().enumerate() {
        if i == 0 {
            varint::write_u64(out, id as u64);
        } else {
            varint::write_u64(out, (id - ids[i - 1] - 1) as u64);
        }
    }
}

/// Encodes a rowset as run/verbatim hybrid chunks (one tag byte per
/// 64-word chunk, whichever of the two encodings is smaller — ties go
/// to verbatim, making the choice deterministic and the bytes
/// reproducible).
fn encode_rowset(out: &mut Vec<u8>, s: &rowset::RowSet) {
    let cap = s.capacity();
    let n_chunks = cap.div_ceil(CHUNK_BITS);
    // Maximal set-bit runs, split at chunk boundaries.
    let mut chunk_runs: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_chunks];
    for (start, len) in s.runs() {
        let mut at = start;
        let end = start + len;
        while at < end {
            let c = at / CHUNK_BITS;
            let stop = ((c + 1) * CHUNK_BITS).min(end);
            chunk_runs[c].push((at - c * CHUNK_BITS, stop - at));
            at = stop;
        }
    }
    let words = s.words();
    for (c, runs) in chunk_runs.iter().enumerate() {
        let bits = (cap - c * CHUNK_BITS).min(CHUNK_BITS);
        let w0 = c * (CHUNK_BITS / 64);
        let w1 = (w0 + CHUNK_BITS / 64).min(words.len());
        // verbatim: the chunk's logical bytes, trailing zeros trimmed
        let mut bytes = Vec::with_capacity(bits.div_ceil(8));
        for &w in &words[w0..w1] {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.truncate(bits.div_ceil(8));
        while bytes.last() == Some(&0) {
            bytes.pop();
        }
        let verbatim_cost = varint::encoded_len(bytes.len() as u64) + bytes.len();
        // runs: gap from previous run's end + len − 1, both varint
        let mut runs_cost = varint::encoded_len(runs.len() as u64);
        let mut prev_end = 0usize;
        for &(rs, rl) in runs {
            runs_cost +=
                varint::encoded_len((rs - prev_end) as u64) + varint::encoded_len((rl - 1) as u64);
            prev_end = rs + rl;
        }
        if runs_cost < verbatim_cost {
            out.push(1u8);
            varint::write_u64(out, runs.len() as u64);
            let mut prev_end = 0usize;
            for &(rs, rl) in runs {
                varint::write_u64(out, (rs - prev_end) as u64);
                varint::write_u64(out, (rl - 1) as u64);
                prev_end = rs + rl;
            }
        } else {
            out.push(0u8);
            varint::write_u64(out, bytes.len() as u64);
            out.extend_from_slice(&bytes);
        }
    }
}

/// Writes `groups` to `path` in the current format version, creating
/// or replacing the file. Returns the content checksum.
pub fn save_artifact(path: &Path, meta: &ArtifactMeta, groups: &[RuleGroup]) -> Result<u64> {
    save_artifact_versioned(path, meta, groups, VERSION)
}

/// [`save_artifact`] with an explicit format version (1 or 2).
pub fn save_artifact_versioned(
    path: &Path,
    meta: &ArtifactMeta,
    groups: &[RuleGroup],
    version: u32,
) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = ArtifactWriter::new_versioned(std::io::BufWriter::new(file), meta, version)?;
    for g in groups {
        w.write_group(g)?;
    }
    w.finish()
}

//! Corrupt-artifact regressions: every damaged file maps to the
//! *specific* [`StoreError`] variant for its kind of damage — and none
//! of them panics. Both format versions get the full treatment; v2
//! additionally gets per-section structural damage and a resealed
//! byte-flip sweep across every section.

use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_store::{
    read_artifact, ArtifactMeta, ArtifactWriter, StoreError, HEADER_LEN, HEADER_LEN_V2, VERSION,
    VERSION_V1,
};
use std::io::Cursor;

/// A small but non-trivial valid artifact to damage.
fn valid_artifact(version: u32) -> Vec<u8> {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    assert!(!groups.is_empty());
    let meta = ArtifactMeta::from_dataset(&d);
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new_versioned(&mut buf, &meta, version).unwrap();
    for g in &groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    buf.into_inner()
}

fn header_len(version: u32) -> usize {
    if version == VERSION_V1 {
        HEADER_LEN
    } else {
        HEADER_LEN_V2
    }
}

#[test]
fn pristine_bytes_load() {
    for version in [VERSION_V1, VERSION] {
        assert!(read_artifact(&valid_artifact(version)).is_ok());
    }
}

#[test]
fn truncation_at_every_length_is_truncated_error() {
    for version in [VERSION_V1, VERSION] {
        let bytes = valid_artifact(version);
        // Every proper prefix must be rejected as Truncated — including
        // prefixes shorter than the header — and must never panic.
        for cut in 0..bytes.len() {
            match read_artifact(&bytes[..cut]) {
                Err(StoreError::Truncated { expected, found }) => {
                    assert_eq!(found, cut as u64);
                    assert!(expected > found, "v{version} cut at {cut}");
                }
                other => panic!("v{version} cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
    }
}

#[test]
fn flipped_payload_byte_is_checksum_mismatch() {
    for version in [VERSION_V1, VERSION] {
        let bytes = valid_artifact(version);
        // Flip one byte in each payload word-ish stride; the checksum
        // must catch every one of them.
        for pos in (header_len(version)..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            match read_artifact(&bad) {
                Err(StoreError::ChecksumMismatch { stored, computed }) => {
                    assert_ne!(stored, computed, "v{version} flip at {pos}")
                }
                other => {
                    panic!("v{version} flip at {pos}: expected ChecksumMismatch, got {other:?}")
                }
            }
        }
    }
}

#[test]
fn flipped_table_offset_is_corrupt() {
    // The v2 section-table offset lives in the header, outside the
    // checksummed payload; damaging it must surface as Corrupt (the
    // table fails its bounds/shape checks), never as a panic.
    let bytes = valid_artifact(VERSION);
    for byte in 24..HEADER_LEN_V2 {
        for flip in [0x01u8, 0x40, 0xff] {
            let mut bad = bytes.clone();
            bad[byte] ^= flip;
            assert!(
                matches!(read_artifact(&bad), Err(StoreError::Corrupt { .. })),
                "table-offset byte {byte} flip {flip:#x}"
            );
        }
    }
}

#[test]
fn flipped_stored_checksum_is_checksum_mismatch() {
    for version in [VERSION_V1, VERSION] {
        let mut bad = valid_artifact(version);
        bad[16] ^= 0x01; // low byte of the header checksum field
        assert!(matches!(
            read_artifact(&bad),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    for version in [VERSION_V1, VERSION] {
        let mut bad = valid_artifact(version);
        bad[..4].copy_from_slice(b"ZIP!");
        match read_artifact(&bad) {
            Err(StoreError::BadMagic { found }) => assert_eq!(&found, b"ZIP!"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }
}

#[test]
fn unknown_version_is_version_skew() {
    for bogus in [0, VERSION + 1, 99] {
        let mut bad = valid_artifact(VERSION);
        bad[4..8].copy_from_slice(&bogus.to_le_bytes());
        match read_artifact(&bad) {
            Err(StoreError::VersionSkew { found, supported }) => {
                assert_eq!(found, bogus);
                assert_eq!(supported, VERSION);
            }
            other => panic!("version {bogus}: expected VersionSkew, got {other:?}"),
        }
    }
}

#[test]
fn trailing_garbage_is_corrupt() {
    for version in [VERSION_V1, VERSION] {
        let mut bad = valid_artifact(version);
        bad.extend_from_slice(b"extra");
        assert!(matches!(
            read_artifact(&bad),
            Err(StoreError::Corrupt { .. })
        ));
    }
}

#[test]
fn precedence_magic_before_version_before_checksum() {
    // A file damaged in several ways reports the outermost failure.
    let mut bad = valid_artifact(VERSION_V1);
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    bad[HEADER_LEN] ^= 0xff;
    let mut worse = bad.clone();
    worse[..4].copy_from_slice(b"????");
    assert!(matches!(
        read_artifact(&worse),
        Err(StoreError::BadMagic { .. })
    ));
    assert!(matches!(
        read_artifact(&bad),
        Err(StoreError::VersionSkew { found: 99, .. })
    ));
}

/// Rebuilds a structurally damaged v1 payload with a *correct*
/// envelope, so the structural validator (not the checksum) must catch
/// it.
fn reseal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&farmer_support::hash::fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// The v2 reseal: correct magic, version, length, checksum, and the
/// caller's table offset.
fn reseal_v2(payload: &[u8], table_offset: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN_V2 + payload.len());
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&farmer_support::hash::fnv1a(payload).to_le_bytes());
    out.extend_from_slice(&table_offset.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn resealed_structural_damage_is_corrupt_never_panic() {
    let bytes = valid_artifact(VERSION_V1);
    let payload = &bytes[HEADER_LEN..];
    // Miscount the trailing group tally.
    let mut miscounted = payload.to_vec();
    let n = payload.len();
    let count = u32::from_le_bytes(payload[n - 4..].try_into().unwrap());
    miscounted[n - 4..].copy_from_slice(&(count + 1).to_le_bytes());
    assert!(matches!(
        read_artifact(&reseal(&miscounted)),
        Err(StoreError::Corrupt { .. })
    ));
    // Chop the payload mid-record (envelope resealed to match, so this
    // is structural truncation, not file truncation).
    for cut in [n - 5, n - 13, n / 2] {
        assert!(
            matches!(
                read_artifact(&reseal(&payload[..cut])),
                Err(StoreError::Corrupt { .. }),
            ),
            "cut at {cut}"
        );
    }
    // Invalid UTF-8 in the first class name (offset 12 = n_rows u64 +
    // n_class u32, then the u32 length prefix precedes the bytes).
    let mut bad_name = payload.to_vec();
    bad_name[16] = 0xff;
    assert!(matches!(
        read_artifact(&reseal(&bad_name)),
        Err(StoreError::Corrupt { .. })
    ));
}

/// Pulls the v2 section table apart so each section can be damaged in
/// isolation: returns (payload, table_offset, [(id, offset, len); 3]).
fn v2_sections() -> (Vec<u8>, u64, Vec<(u8, u64, u64)>) {
    let bytes = valid_artifact(VERSION);
    let table_offset = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
    let payload = bytes[HEADER_LEN_V2..].to_vec();
    let t = &payload[table_offset as usize..];
    assert_eq!(t[0], 3);
    let mut sections = Vec::new();
    for i in 0..3 {
        let e = &t[1 + i * 17..];
        sections.push((
            e[0],
            u64::from_le_bytes(e[1..9].try_into().unwrap()),
            u64::from_le_bytes(e[9..17].try_into().unwrap()),
        ));
    }
    (payload, table_offset, sections)
}

#[test]
fn v2_section_table_damage_is_corrupt() {
    let (payload, table_offset, sections) = v2_sections();
    // Table offset pointing past the payload.
    assert!(matches!(
        read_artifact(&reseal_v2(&payload, payload.len() as u64 + 1)),
        Err(StoreError::Corrupt { .. })
    ));
    // Table offset pointing somewhere that is not a valid table.
    assert!(matches!(
        read_artifact(&reseal_v2(&payload, table_offset / 2)),
        Err(StoreError::Corrupt { .. })
    ));
    let to = table_offset as usize;
    // Wrong section count.
    let mut bad = payload.clone();
    bad[to] = 2;
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
    // Wrong section id in slot 0.
    let mut bad = payload.clone();
    bad[to + 1] = 9;
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
    // Non-contiguous: shift the GROUPS offset by one.
    let mut bad = payload.clone();
    let groups_off_pos = to + 1 + 17 + 1;
    bad[groups_off_pos..groups_off_pos + 8].copy_from_slice(&(sections[1].1 + 1).to_le_bytes());
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
    // Sections that do not end at the table: shrink the trailer.
    let mut bad = payload.clone();
    let trailer_len_pos = to + 1 + 2 * 17 + 9;
    bad[trailer_len_pos..trailer_len_pos + 8]
        .copy_from_slice(&(sections[2].2.wrapping_sub(1)).to_le_bytes());
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn v2_dict_damage_is_corrupt() {
    let (payload, table_offset, _) = v2_sections();
    // The dictionary opens with varint n_rows (4 here = 1 byte) then
    // varint class count; force the class count absurdly high so the
    // names run off the section end.
    let mut bad = payload.clone();
    bad[1] = 0x7f;
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
    // Invalid UTF-8 inside the first class name's bytes.
    let mut bad = payload.clone();
    bad[3] = 0xff;
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn v2_groups_and_trailer_damage_is_corrupt() {
    let (payload, table_offset, sections) = v2_sections();
    let groups = sections[1];
    let trailer = sections[2];
    // Chop the groups section mid-record: shrink both the section
    // length and the following offsets consistently, so only the
    // record structure is at fault.
    for shave in [1u64, 2, groups.2 / 2] {
        let mut bad = Vec::new();
        bad.extend_from_slice(&payload[..(groups.1 + groups.2 - shave) as usize]);
        bad.extend_from_slice(&payload[trailer.1 as usize..table_offset as usize]);
        let mut table = vec![3u8];
        for (id, offset, len) in [
            (1u8, 0u64, sections[0].2),
            (2, groups.1, groups.2 - shave),
            (3, trailer.1 - shave, trailer.2),
        ] {
            table.push(id);
            table.extend_from_slice(&offset.to_le_bytes());
            table.extend_from_slice(&len.to_le_bytes());
        }
        bad.extend_from_slice(&table);
        assert!(
            matches!(
                read_artifact(&reseal_v2(&bad, table_offset - shave)),
                Err(StoreError::Corrupt { .. })
            ),
            "shave {shave}"
        );
    }
    // Lie in the trailer: bump the declared group count.
    let mut bad = payload.clone();
    let tpos = trailer.1 as usize;
    bad[tpos] = bad[tpos].wrapping_add(1);
    assert!(matches!(
        read_artifact(&reseal_v2(&bad, table_offset)),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn v2_resealed_flip_sweep_never_panics() {
    // Flip every payload byte in turn, reseal the envelope (fresh
    // checksum, same table offset), and parse. Structural validation
    // must classify each one as Ok or a typed error — never a panic,
    // regardless of which section the flip lands in.
    let (payload, table_offset, _) = v2_sections();
    let mut outcomes = [0usize; 2];
    for pos in 0..payload.len() {
        for flip in [0x01u8, 0x80] {
            let mut bad = payload.clone();
            bad[pos] ^= flip;
            match read_artifact(&reseal_v2(&bad, table_offset)) {
                Ok(_) => outcomes[0] += 1,
                Err(_) => outcomes[1] += 1,
            }
        }
    }
    // Sanity: the sweep must have exercised both outcomes — a benign
    // flip (e.g. inside a name) and plenty of structural rejections.
    assert!(outcomes[0] > 0, "no flip parsed cleanly: {outcomes:?}");
    assert!(outcomes[1] > 0, "no flip was rejected: {outcomes:?}");
}

#[test]
fn header_only_file_is_truncated_not_corrupt() {
    // A v1 header that promises a payload which never arrives.
    let mut out = Vec::new();
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION_V1.to_le_bytes());
    out.extend_from_slice(&100u64.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    match read_artifact(&out) {
        Err(StoreError::Truncated { expected, found }) => {
            assert_eq!(expected, HEADER_LEN as u64 + 100);
            assert_eq!(found, HEADER_LEN as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
    // A v2 header cut off before its table-offset field.
    let mut out = Vec::new();
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&100u64.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    match read_artifact(&out) {
        Err(StoreError::Truncated { expected, found }) => {
            assert_eq!(expected, HEADER_LEN_V2 as u64);
            assert_eq!(found, HEADER_LEN as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

//! Corrupt-artifact regressions: every damaged file maps to the
//! *specific* [`StoreError`] variant for its kind of damage — and none
//! of them panics.

use farmer_core::{canonical_sort, Farmer, MiningParams};
use farmer_dataset::DatasetBuilder;
use farmer_store::{read_artifact, ArtifactMeta, ArtifactWriter, StoreError, HEADER_LEN, VERSION};
use std::io::Cursor;

/// A small but non-trivial valid artifact to damage.
fn valid_artifact() -> Vec<u8> {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    let d = b.build();
    let mut groups = Vec::new();
    for class in 0..2 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(1))
                .mine(&d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    assert!(!groups.is_empty());
    let meta = ArtifactMeta::from_dataset(&d);
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new(&mut buf, &meta).unwrap();
    for g in &groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    buf.into_inner()
}

#[test]
fn pristine_bytes_load() {
    assert!(read_artifact(&valid_artifact()).is_ok());
}

#[test]
fn truncation_at_every_length_is_truncated_error() {
    let bytes = valid_artifact();
    // Every proper prefix must be rejected as Truncated — including
    // prefixes shorter than the header — and must never panic.
    for cut in 0..bytes.len() {
        match read_artifact(&bytes[..cut]) {
            Err(StoreError::Truncated { expected, found }) => {
                assert_eq!(found, cut as u64);
                assert!(expected > found, "cut at {cut}");
            }
            other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
        }
    }
}

#[test]
fn flipped_payload_byte_is_checksum_mismatch() {
    let bytes = valid_artifact();
    // Flip one byte in each payload word-ish stride; the checksum must
    // catch every one of them.
    for pos in (HEADER_LEN..bytes.len()).step_by(7) {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x40;
        match read_artifact(&bad) {
            Err(StoreError::ChecksumMismatch { stored, computed }) => {
                assert_ne!(stored, computed, "flip at {pos}")
            }
            other => panic!("flip at {pos}: expected ChecksumMismatch, got {other:?}"),
        }
    }
}

#[test]
fn flipped_stored_checksum_is_checksum_mismatch() {
    let mut bad = valid_artifact();
    bad[16] ^= 0x01; // low byte of the header checksum field
    assert!(matches!(
        read_artifact(&bad),
        Err(StoreError::ChecksumMismatch { .. })
    ));
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bad = valid_artifact();
    bad[..4].copy_from_slice(b"ZIP!");
    match read_artifact(&bad) {
        Err(StoreError::BadMagic { found }) => assert_eq!(&found, b"ZIP!"),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn future_version_is_version_skew() {
    let mut bad = valid_artifact();
    bad[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
    match read_artifact(&bad) {
        Err(StoreError::VersionSkew { found, supported }) => {
            assert_eq!(found, VERSION + 1);
            assert_eq!(supported, VERSION);
        }
        other => panic!("expected VersionSkew, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_is_corrupt() {
    let mut bad = valid_artifact();
    bad.extend_from_slice(b"extra");
    assert!(matches!(
        read_artifact(&bad),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn precedence_magic_before_version_before_checksum() {
    // A file damaged in several ways reports the outermost failure.
    let mut bad = valid_artifact();
    bad[4..8].copy_from_slice(&99u32.to_le_bytes());
    bad[HEADER_LEN] ^= 0xff;
    let mut worse = bad.clone();
    worse[..4].copy_from_slice(b"????");
    assert!(matches!(
        read_artifact(&worse),
        Err(StoreError::BadMagic { .. })
    ));
    assert!(matches!(
        read_artifact(&bad),
        Err(StoreError::VersionSkew { found: 99, .. })
    ));
}

/// Rebuilds a structurally damaged payload with a *correct* envelope,
/// so the structural validator (not the checksum) must catch it.
fn reseal(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&farmer_support::hash::fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

#[test]
fn resealed_structural_damage_is_corrupt_never_panic() {
    let bytes = valid_artifact();
    let payload = &bytes[HEADER_LEN..];
    // Miscount the trailing group tally.
    let mut miscounted = payload.to_vec();
    let n = payload.len();
    let count = u32::from_le_bytes(payload[n - 4..].try_into().unwrap());
    miscounted[n - 4..].copy_from_slice(&(count + 1).to_le_bytes());
    assert!(matches!(
        read_artifact(&reseal(&miscounted)),
        Err(StoreError::Corrupt { .. })
    ));
    // Chop the payload mid-record (envelope resealed to match, so this
    // is structural truncation, not file truncation).
    for cut in [n - 5, n - 13, n / 2] {
        assert!(
            matches!(
                read_artifact(&reseal(&payload[..cut])),
                Err(StoreError::Corrupt { .. }),
            ),
            "cut at {cut}"
        );
    }
    // Invalid UTF-8 in the first class name (offset 12 = n_rows u64 +
    // n_class u32, then the u32 length prefix precedes the bytes).
    let mut bad_name = payload.to_vec();
    bad_name[16] = 0xff;
    assert!(matches!(
        read_artifact(&reseal(&bad_name)),
        Err(StoreError::Corrupt { .. })
    ));
}

#[test]
fn header_only_file_is_truncated_not_corrupt() {
    // A header that promises a payload which never arrives.
    let mut out = Vec::new();
    out.extend_from_slice(&farmer_store::MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&100u64.to_le_bytes());
    out.extend_from_slice(&0u64.to_le_bytes());
    match read_artifact(&out) {
        Err(StoreError::Truncated { expected, found }) => {
            assert_eq!(expected, HEADER_LEN as u64 + 100);
            assert_eq!(found, HEADER_LEN as u64);
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

//! Edge cases at the format's encoding boundaries: 10-byte varints,
//! artifacts with no groups at all, and rowset chunks that end exactly
//! on (or one row past) the 4096-bit chunk boundary.

use farmer_core::RuleGroup;
use farmer_store::{
    read_artifact, save_artifact_versioned, Artifact, ArtifactMeta, VERSION, VERSION_V1,
};
use rowset::{IdList, RowSet};
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgi-edge-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// The largest LEB128 varints (10 bytes for `u64::MAX`) must survive
/// the v2 dictionary, where `n_rows` and the class counts are
/// varint-coded. No groups ride along — a `u64::MAX`-row bitset cannot
/// exist — so this isolates the integer coding itself.
#[test]
fn u64_max_varints_survive_the_dictionary() {
    let meta = ArtifactMeta {
        n_rows: u64::MAX,
        class_names: vec!["huge".into(), "tiny".into()],
        class_counts: vec![u64::MAX, u64::MAX - 1],
        item_names: vec!["g0".into()],
    };
    for version in [VERSION_V1, VERSION] {
        let path = tmp(&format!("maxvarint-v{version}.fgi"));
        save_artifact_versioned(&path, &meta, &[], version).unwrap();
        let art = Artifact::load(&path).unwrap();
        assert_eq!(art.meta.n_rows, u64::MAX, "v{version}");
        assert_eq!(art.meta.class_counts, vec![u64::MAX, u64::MAX - 1]);
        assert!(art.groups.is_empty());
    }
}

/// An artifact holding zero groups is legal (a fresh deployment before
/// any mining finishes publishes one): the trailer count must agree
/// and the file must round-trip through both format versions.
#[test]
fn empty_group_list_round_trips() {
    let meta = ArtifactMeta {
        n_rows: 10,
        class_names: vec!["a".into(), "b".into()],
        class_counts: vec![6, 4],
        item_names: vec!["x".into(), "y".into(), "z".into()],
    };
    for version in [VERSION_V1, VERSION] {
        let path = tmp(&format!("empty-v{version}.fgi"));
        let checksum = save_artifact_versioned(&path, &meta, &[], version).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let art = read_artifact(&bytes).unwrap();
        assert!(art.groups.is_empty(), "v{version}");
        assert_eq!(art.meta.item_names, meta.item_names);
        // Same input, same bytes, same checksum on a rewrite.
        let path2 = tmp(&format!("empty2-v{version}.fgi"));
        assert_eq!(
            save_artifact_versioned(&path2, &meta, &[], version).unwrap(),
            checksum
        );
    }
}

fn one_group(cap: usize, rows: &[usize]) -> (ArtifactMeta, RuleGroup) {
    let meta = ArtifactMeta {
        n_rows: cap as u64,
        class_names: vec!["c".into()],
        class_counts: vec![cap as u64],
        item_names: vec!["i0".into(), "i1".into()],
    };
    let mut support_set = RowSet::empty(cap);
    for &r in rows {
        support_set.insert(r);
    }
    let upper = IdList::from_sorted(vec![0, 1]);
    let g = RuleGroup {
        upper: upper.clone(),
        lower: vec![upper],
        sup: rows.len(),
        neg_sup: 0,
        class: 0,
        n_rows: cap,
        n_class: cap,
        support_set,
    };
    (meta, g)
}

/// The v2 rowset codec splits the bitset into 4096-bit chunks. Pin the
/// boundary: capacities of exactly 4096 bits, one bit less, and one bit
/// more, with the interesting rows sitting on either side of the seam.
#[test]
fn rowset_chunk_boundary_at_exactly_4096_bits() {
    let cases: &[(usize, &[usize])] = &[
        (4095, &[4094]),       // last row of a partial final chunk
        (4096, &[4095]),       // last row of an exactly-full chunk
        (4096, &[0]),          // lone bit far from the seam
        (4096, &[]),           // empty set at the boundary capacity
        (4097, &[4096]),       // first row of a 1-bit second chunk
        (4097, &[4095, 4096]), // a run straddling the seam
    ];
    for (case, &(cap, rows)) in cases.iter().enumerate() {
        for version in [VERSION_V1, VERSION] {
            let path = tmp(&format!("chunk-{case}-v{version}.fgi"));
            let (meta, g) = one_group(cap, rows);
            save_artifact_versioned(&path, &meta, std::slice::from_ref(&g), version).unwrap();
            let art = Artifact::load(&path).unwrap();
            assert_eq!(art.groups.len(), 1, "case {case} v{version}");
            let got = &art.groups[0];
            assert_eq!(got.support_set.capacity(), cap, "case {case} v{version}");
            assert_eq!(got.support_set.to_vec(), rows, "case {case} v{version}");
            assert_eq!(got.sup, rows.len());
            assert_eq!(got.upper.as_slice(), &[0, 1]);
        }
    }
}

/// A dense run crossing the chunk seam must also survive — the writer
/// splits runs at chunk boundaries and the reader reassembles them.
#[test]
fn dense_run_across_the_chunk_seam_round_trips() {
    let rows: Vec<usize> = (4000..4200).collect();
    let (meta, g) = one_group(8192, &rows);
    for version in [VERSION_V1, VERSION] {
        let path = tmp(&format!("seam-run-v{version}.fgi"));
        save_artifact_versioned(&path, &meta, std::slice::from_ref(&g), version).unwrap();
        let art = Artifact::load(&path).unwrap();
        assert_eq!(art.groups[0].support_set.to_vec(), rows, "v{version}");
    }
}

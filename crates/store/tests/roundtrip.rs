//! Round-trip property tests: `save → load` must reproduce the mined
//! rule groups byte-for-byte (as pinned by `farmer_core::dump_groups`)
//! and the dataset metadata exactly.

use farmer_core::{canonical_sort, dump_groups, Farmer, MiningParams};
use farmer_dataset::{Dataset, DatasetBuilder};
use farmer_store::{read_artifact, ArtifactMeta, ArtifactWriter};
use farmer_support::check::prelude::*;
use std::io::Cursor;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        collection::vec(
            (
                collection::btree_set(0..n_items as u32, 1..n_items),
                0u32..2,
            ),
            n_rows,
        )
        .prop_map(|rows| {
            let mut b = DatasetBuilder::new(2);
            for (items, label) in rows {
                b.add_row(items, label);
            }
            b.build()
        })
    })
}

/// Mines both classes of `d` in canonical order.
fn mine_all(d: &Dataset, min_sup: usize) -> Vec<farmer_core::RuleGroup> {
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(min_sup))
                .mine(d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    groups
}

/// Writes to an in-memory buffer via the streaming writer.
fn save_to_vec(meta: &ArtifactMeta, groups: &[farmer_core::RuleGroup]) -> Vec<u8> {
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new(&mut buf, meta).unwrap();
    for g in groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    buf.into_inner()
}

check! {
    #![config(cases = 48)]

    /// save → load reproduces a byte-identical group dump and the
    /// exact metadata, for arbitrary mined datasets.
    #[test]
    fn save_load_round_trips(d in arb_dataset(), min_sup in 1usize..3) {
        let groups = mine_all(&d, min_sup);
        let meta = ArtifactMeta::from_dataset(&d);
        let bytes = save_to_vec(&meta, &groups);
        let art = read_artifact(&bytes).unwrap();
        prop_assert_eq!(&art.meta, &meta);
        prop_assert_eq!(dump_groups(&art.groups), dump_groups(&groups));
        // Loaded groups re-serialize to the very same bytes.
        let again = save_to_vec(&art.meta, &art.groups);
        prop_assert_eq!(again, bytes);
    }
}

#[test]
fn file_round_trip_and_checksum_agree() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    b.add_row([2, 3], 0);
    let d = b.build();
    let groups = mine_all(&d, 1);
    assert!(!groups.is_empty(), "seed dataset must mine something");
    let meta = ArtifactMeta::from_dataset(&d);

    let path = std::env::temp_dir().join(format!("fgi-roundtrip-{}.fgi", std::process::id()));
    let checksum = farmer_store::save_artifact(&path, &meta, &groups).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // The returned checksum is the one in the header.
    assert_eq!(
        checksum,
        u64::from_le_bytes(bytes[16..24].try_into().unwrap())
    );
    let art = farmer_store::read_artifact(&bytes).unwrap();
    assert_eq!(dump_groups(&art.groups), dump_groups(&groups));
    assert_eq!(art.meta, meta);
}

#[test]
fn empty_group_set_round_trips() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0], 0);
    b.add_row([1], 1);
    let d = b.build();
    let meta = ArtifactMeta::from_dataset(&d);
    let bytes = save_to_vec(&meta, &[]);
    let art = read_artifact(&bytes).unwrap();
    assert_eq!(art.meta, meta);
    assert!(art.groups.is_empty());
}

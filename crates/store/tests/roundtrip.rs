//! Round-trip property tests: `save → load` must reproduce the mined
//! rule groups byte-for-byte (as pinned by `farmer_core::dump_groups`)
//! and the dataset metadata exactly.

use farmer_core::{canonical_sort, dump_groups, Farmer, MiningParams};
use farmer_dataset::{Dataset, DatasetBuilder};
use farmer_store::{read_artifact, ArtifactMeta, ArtifactWriter, VERSION, VERSION_V1};
use farmer_support::check::prelude::*;
use std::io::Cursor;

fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (3usize..8, 3usize..10).prop_flat_map(|(n_rows, n_items)| {
        collection::vec(
            (
                collection::btree_set(0..n_items as u32, 1..n_items),
                0u32..2,
            ),
            n_rows,
        )
        .prop_map(|rows| {
            let mut b = DatasetBuilder::new(2);
            for (items, label) in rows {
                b.add_row(items, label);
            }
            b.build()
        })
    })
}

/// Mines both classes of `d` in canonical order.
fn mine_all(d: &Dataset, min_sup: usize) -> Vec<farmer_core::RuleGroup> {
    let mut groups = Vec::new();
    for class in 0..d.n_classes() as u32 {
        groups.extend(
            Farmer::new(MiningParams::new(class).min_sup(min_sup))
                .mine(d)
                .groups,
        );
    }
    canonical_sort(&mut groups);
    groups
}

/// Writes to an in-memory buffer via the streaming writer.
fn save_to_vec_versioned(
    meta: &ArtifactMeta,
    groups: &[farmer_core::RuleGroup],
    version: u32,
) -> Vec<u8> {
    let mut buf = Cursor::new(Vec::new());
    let mut w = ArtifactWriter::new_versioned(&mut buf, meta, version).unwrap();
    for g in groups {
        w.write_group(g).unwrap();
    }
    w.finish().unwrap();
    buf.into_inner()
}

/// Writes to an in-memory buffer in the default (current) version.
fn save_to_vec(meta: &ArtifactMeta, groups: &[farmer_core::RuleGroup]) -> Vec<u8> {
    save_to_vec_versioned(meta, groups, VERSION)
}

check! {
    #![config(cases = 48)]

    /// save → load reproduces a byte-identical group dump and the
    /// exact metadata, for arbitrary mined datasets — in both format
    /// versions, which must agree with each other: the v2 round trip
    /// of `dump_groups` is pinned byte-identical to the v1 round trip.
    #[test]
    fn save_load_round_trips(d in arb_dataset(), min_sup in 1usize..3) {
        let groups = mine_all(&d, min_sup);
        let meta = ArtifactMeta::from_dataset(&d);
        let reference = dump_groups(&groups);
        for version in [VERSION_V1, VERSION] {
            let bytes = save_to_vec_versioned(&meta, &groups, version);
            let art = read_artifact(&bytes).unwrap();
            prop_assert_eq!(&art.meta, &meta);
            prop_assert_eq!(dump_groups(&art.groups), reference.clone());
            // Loaded groups re-serialize to the very same bytes.
            let again = save_to_vec_versioned(&art.meta, &art.groups, version);
            prop_assert_eq!(again, bytes);
        }
        // v2 is the compact encoding: never larger than v1.
        let v1 = save_to_vec_versioned(&meta, &groups, VERSION_V1);
        let v2 = save_to_vec_versioned(&meta, &groups, VERSION);
        prop_assert!(v2.len() <= v1.len(), "v2 {} > v1 {}", v2.len(), v1.len());
    }
}

/// Cross-version matrix: every (write version, read) combination loads
/// and produces identical groups and metadata.
#[test]
fn cross_version_matrix() {
    let mut b = DatasetBuilder::new(3);
    b.add_row([0, 1, 2, 5], 0);
    b.add_row([0, 1, 5], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3, 4], 1);
    b.add_row([2, 3, 4], 2);
    b.add_row([0, 2, 4, 5], 2);
    let d = b.build();
    let groups = mine_all(&d, 1);
    assert!(!groups.is_empty());
    let meta = ArtifactMeta::from_dataset(&d);
    let reference = dump_groups(&groups);
    for version in [VERSION_V1, VERSION] {
        let bytes = save_to_vec_versioned(&meta, &groups, version);
        assert_eq!(
            u32::from_le_bytes(bytes[4..8].try_into().unwrap()),
            version,
            "header carries the requested version"
        );
        let art = read_artifact(&bytes).unwrap();
        assert_eq!(art.meta, meta, "v{version} metadata");
        assert_eq!(dump_groups(&art.groups), reference, "v{version} groups");
    }
}

#[test]
fn file_round_trip_and_checksum_agree() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0, 1, 2], 0);
    b.add_row([0, 1], 0);
    b.add_row([1, 2, 3], 1);
    b.add_row([0, 3], 1);
    b.add_row([2, 3], 0);
    let d = b.build();
    let groups = mine_all(&d, 1);
    assert!(!groups.is_empty(), "seed dataset must mine something");
    let meta = ArtifactMeta::from_dataset(&d);

    let path = std::env::temp_dir().join(format!("fgi-roundtrip-{}.fgi", std::process::id()));
    let checksum = farmer_store::save_artifact(&path, &meta, &groups).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).unwrap();

    // The returned checksum is the one in the header.
    assert_eq!(
        checksum,
        u64::from_le_bytes(bytes[16..24].try_into().unwrap())
    );
    let art = farmer_store::read_artifact(&bytes).unwrap();
    assert_eq!(dump_groups(&art.groups), dump_groups(&groups));
    assert_eq!(art.meta, meta);
}

#[test]
fn empty_group_set_round_trips() {
    let mut b = DatasetBuilder::new(2);
    b.add_row([0], 0);
    b.add_row([1], 1);
    let d = b.build();
    let meta = ArtifactMeta::from_dataset(&d);
    let bytes = save_to_vec(&meta, &[]);
    let art = read_artifact(&bytes).unwrap();
    assert_eq!(art.meta, meta);
    assert!(art.groups.is_empty());
}

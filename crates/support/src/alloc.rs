//! A counting global allocator for allocation-budget tests.
//!
//! The enumeration hot path promises steady-state zero-allocation
//! operation (scratch arenas + fused kernels); that promise rots
//! silently unless a test counts. Install [`CountingAlloc`] as the
//! `#[global_allocator]` of a test binary and read
//! [`allocation_count`] around the region under test:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: farmer_support::alloc::CountingAlloc =
//!     farmer_support::alloc::CountingAlloc::new();
//!
//! let before = farmer_support::alloc::allocation_count();
//! hot_path();
//! let during = farmer_support::alloc::allocation_count() - before;
//! ```
//!
//! Counts are process-global (one counter, relaxed atomics), so a test
//! binary using them must run its measured sections on a single thread
//! — put them in **one** `#[test]` fn, or serialize with a lock.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// Number of heap acquisitions (`alloc`, `alloc_zeroed`, and growing
/// `realloc` calls) since process start, across all threads.
pub fn allocation_count() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// A `GlobalAlloc` that delegates to [`System`] and counts every heap
/// acquisition. Install with `#[global_allocator]`; see the module docs.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A counting allocator (stateless; the counter is process-global).
    pub const fn new() -> Self {
        CountingAlloc
    }
}

// SAFETY: pure delegation to `System`; the counter has no effect on the
// returned pointers or layouts.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

//! A criterion-lite benchmark timer.
//!
//! The `benches/*.rs` files in this workspace are plain binaries
//! (`harness = false`): [`criterion_group!`](crate::criterion_group)
//! collects benchmark functions into a runner and
//! [`criterion_main!`](crate::criterion_main) emits `main`. Each
//! benchmark is warmed up, sampled N times, and reported as
//! median/p10/p90 wall-clock time per iteration.
//!
//! Environment knobs:
//!
//! * `FARMER_BENCH_SAMPLES` — override every group's sample count
//!   (e.g. `1` for a CI smoke run).
//! * `FARMER_BENCH_JSON` — path to write a machine-readable report of
//!   all measurements via [`support::json`](crate::json).

use crate::json::{Json, ObjBuilder};
use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Default number of timed samples per benchmark.
pub const DEFAULT_SAMPLES: usize = 20;

/// A benchmark name with an optional parameter, printed as
/// `function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Just the parameter, for groups benching one function over many
    /// inputs.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// One benchmark's summarized timings, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// `group/function/parameter` path.
    pub id: String,
    /// Median ns/iter.
    pub median_ns: f64,
    /// 10th percentile ns/iter.
    pub p10_ns: f64,
    /// 90th percentile ns/iter.
    pub p90_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl Measurement {
    /// JSON shape used by the `FARMER_BENCH_JSON` report.
    pub fn to_json(&self) -> Json {
        ObjBuilder::new()
            .field("id", self.id.as_str())
            .field("median_ns", self.median_ns)
            .field("p10_ns", self.p10_ns)
            .field("p90_ns", self.p90_ns)
            .field("samples", self.samples)
            .field("iters_per_sample", self.iters_per_sample)
            .build()
    }
}

/// Top-level benchmark runner; collects [`Measurement`]s across
/// groups and writes the optional JSON report when dropped.
pub struct Criterion {
    sample_override: Option<usize>,
    json_path: Option<String>,
    results: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_override: std::env::var("FARMER_BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.trim().parse().ok()),
            json_path: std::env::var("FARMER_BENCH_JSON").ok(),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Accepts and ignores harness CLI arguments (`cargo bench`
    /// passes `--bench`); kept for criterion signature parity.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benches a function outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
    }

    /// Writes the JSON report if `FARMER_BENCH_JSON` is set. Called
    /// automatically on drop; explicit calls are idempotent enough
    /// for tests.
    pub fn finalize(&mut self) {
        let Some(path) = self.json_path.take() else {
            return;
        };
        let report = ObjBuilder::new()
            .field(
                "measurements",
                Json::Arr(self.results.iter().map(Measurement::to_json).collect()),
            )
            .build();
        if let Err(e) = std::fs::write(&path, report.pretty()) {
            eprintln!("warning: could not write bench report to {path}: {e}");
        } else {
            eprintln!("wrote bench report to {path}");
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        self.finalize();
    }
}

/// A group of benchmarks sharing sample-count and time budgets.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    samples: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples (overridden by
    /// `FARMER_BENCH_SAMPLES`).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Sets the total time budget the samples should roughly fill.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Times `f`'s [`Bencher::iter`] closure and records the result.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let full_id = if self.name.is_empty() {
            id.label.clone()
        } else {
            format!("{}/{}", self.name, id.label)
        };
        let samples = self.parent.sample_override.unwrap_or(self.samples).max(1);
        let mut bencher = Bencher {
            samples,
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut bencher);
        let Some(mut m) = bencher.result else {
            eprintln!("{full_id:<40} (no iter() call)");
            return;
        };
        m.id = full_id.clone();
        eprintln!(
            "{full_id:<40} median {:>12}  p10 {:>12}  p90 {:>12}  ({} samples x {} iters)",
            fmt_ns(m.median_ns),
            fmt_ns(m.p10_ns),
            fmt_ns(m.p90_ns),
            m.samples,
            m.iters_per_sample,
        );
        self.parent.results.push(m);
    }

    /// Like [`bench_function`](Self::bench_function) with an input
    /// value passed through to the closure.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.bench_function(id, |b| f(b, input));
    }

    /// Ends the group (prints nothing extra; kept for criterion
    /// signature parity).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; [`iter`](Self::iter) does the timing.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    result: Option<Measurement>,
}

impl Bencher {
    /// Calibrates an iteration count, warms up, then times `samples`
    /// batches of `routine`, recording per-iteration nanoseconds.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: double the batch size until one batch takes long
        // enough to time reliably, or the whole budget would blow up.
        let per_sample_budget = self.measurement_time.as_secs_f64() / self.samples.max(1) as f64;
        let min_batch_time = Duration::from_micros(200)
            .as_secs_f64()
            .min(per_sample_budget);
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            if elapsed >= min_batch_time || elapsed >= per_sample_budget || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        // One warmup batch, then the timed samples.
        for _ in 0..iters {
            black_box(routine());
        }
        let mut per_iter_ns: Vec<f64> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(routine());
                }
                start.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        self.result = Some(Measurement {
            id: String::new(),
            median_ns: percentile(&per_iter_ns, 0.50),
            p10_ns: percentile(&per_iter_ns, 0.10),
            p90_ns: percentile(&per_iter_ns, 0.90),
            samples: self.samples,
            iters_per_sample: iters,
        });
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} us", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a single runner function, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::bench::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` for a `harness = false` bench binary; tolerates the
/// extra CLI arguments `cargo bench` passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_plausible_timings() {
        let mut c = Criterion::default();
        c.sample_override = Some(3);
        let mut group = c.benchmark_group("demo");
        group.measurement_time(Duration::from_millis(50));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..1000 * k).sum::<u64>())
        });
        group.finish();
        let ms = c.measurements();
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].id, "demo/sum");
        assert_eq!(ms[1].id, "demo/scaled/4");
        for m in ms {
            assert!(m.median_ns > 0.0);
            assert!(m.p10_ns <= m.median_ns && m.median_ns <= m.p90_ns);
            assert_eq!(m.samples, 3);
        }
        c.json_path = None;
    }

    #[test]
    fn json_report_round_trips() {
        let m = Measurement {
            id: "g/f/1".to_string(),
            median_ns: 123.5,
            p10_ns: 100.0,
            p90_ns: 150.25,
            samples: 20,
            iters_per_sample: 1024,
        };
        let parsed = Json::parse(&m.to_json().to_string()).unwrap();
        assert_eq!(parsed["id"].as_str(), Some("g/f/1"));
        assert_eq!(parsed["median_ns"].as_f64(), Some(123.5));
        assert_eq!(parsed["p10_ns"].as_f64(), Some(100.0));
        assert_eq!(parsed["p90_ns"].as_f64(), Some(150.25));
        assert_eq!(parsed["samples"].as_u64(), Some(20));
        assert_eq!(parsed["iters_per_sample"].as_u64(), Some(1024));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).label, "f/32");
        assert_eq!(BenchmarkId::from_parameter("entropy").label, "entropy");
        assert_eq!(BenchmarkId::from("plain").label, "plain");
    }
}

//! A minimal property-testing harness with integrated shrinking.
//!
//! The shape follows proptest closely enough that the workspace's
//! property suites ported with `use`-line edits: strategies are
//! composable generators (`Range`s, [`collection::vec`],
//! [`collection::btree_set`], tuples, [`select`], `prop_map`,
//! `prop_flat_map`), the [`check!`](crate::check!) macro turns
//! `fn prop(x in strat) { .. }` items into `#[test]` functions, and a
//! failing case is greedily shrunk to a smaller counterexample before
//! reporting.
//!
//! Shrinking is *integrated* (the Hedgehog design): generating a value
//! produces a lazy rose [`Tree`] whose children are simpler variants,
//! so `prop_map`/`prop_flat_map` shrink through their closures for
//! free — there is no separate per-type shrinker to keep in sync with
//! the generator.
//!
//! Environment knobs:
//!
//! * `FARMER_CHECK_SEED` — replay a failure (decimal or `0x…` hex).
//! * `FARMER_CHECK_CASES` — override the per-property case budget.

use crate::rng::{Rng, SeedableRng, StdRng};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;
use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::Once;

/// Default seed: fixed so CI runs are reproducible without any
/// environment setup.
pub const DEFAULT_SEED: u64 = 0xFA12_3ED5_C0DE_0001;

/// Default number of cases per property (proptest's default).
pub const DEFAULT_CASES: u32 = 256;

// ---------------------------------------------------------------------------
// Rose trees
// ---------------------------------------------------------------------------

/// A lazily expanded rose tree: a generated value plus a thunk
/// producing simpler candidate values, ordered most-aggressive first.
pub struct Tree<T> {
    /// The generated (or shrunk-to) value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone + 'static> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: self.children.clone(),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A tree with no simpler variants.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A tree whose candidates are produced on demand by `children`.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// Expands one level of candidates.
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`, preserving shrink structure.
    pub fn map<U: Clone + 'static>(&self, f: Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let kids = self.children.clone();
        let f2 = f.clone();
        Tree {
            value,
            children: Rc::new(move || kids().iter().map(|c| c.map(f2.clone())).collect()),
        }
    }
}

/// Greedy shrink: repeatedly step to the first failing child until no
/// candidate fails or `max_steps` trial executions are spent. Returns
/// the minimal failing tree reached and the number of successful
/// shrink steps taken.
pub fn shrink_tree<T: Clone + 'static>(
    tree: Tree<T>,
    mut still_fails: impl FnMut(&T) -> bool,
    max_steps: u32,
) -> (Tree<T>, u32) {
    let mut current = tree;
    let mut spent = 0u32;
    let mut improved = 0u32;
    'outer: loop {
        for child in current.children() {
            if spent >= max_steps {
                break 'outer;
            }
            spent += 1;
            if still_fails(&child.value) {
                current = child;
                improved += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, improved)
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A composable generator of shrinkable values.
pub trait Strategy {
    /// The generated type.
    type Value: Clone + Debug + 'static;

    /// Generates one value together with its shrink candidates.
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value>;

    /// Maps generated values through `f` (shrinks through it too).
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U + 'static,
    {
        Map {
            inner: self,
            f: Rc::new(f),
        }
    }

    /// Feeds generated values into a dependent strategy. Shrinking
    /// first simplifies the outer value (regenerating the inner one
    /// from a snapshotted stream), then the inner one.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy + 'static,
        F: Fn(Self::Value) -> S + 'static,
    {
        FlatMap {
            outer: self,
            f: Rc::new(f),
        }
    }
}

// ---- integers -------------------------------------------------------------

/// Shrink candidates between `origin` and `v`, most aggressive first.
macro_rules! int_towards {
    ($name:ident, $t:ty) => {
        fn $name(origin: $t, v: $t) -> Vec<$t> {
            if v == origin {
                return Vec::new();
            }
            let mut out = vec![origin];
            let mut diff = (v - origin) / 2;
            while diff > 0 {
                let c = v - diff;
                if c != origin {
                    out.push(c);
                }
                diff /= 2;
            }
            out
        }
    };
}

macro_rules! int_strategy {
    ($t:ty, $towards:ident) => {
        int_towards!($towards, $t);

        impl Strategy for Range<$t> {
            type Value = $t;
            fn tree(&self, rng: &mut StdRng) -> Tree<$t> {
                let v = rng.gen_range(self.clone());
                int_tree(v, self.start, $towards)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn tree(&self, rng: &mut StdRng) -> Tree<$t> {
                let v = rng.gen_range(self.clone());
                int_tree(v, *self.start(), $towards)
            }
        }
    };
}

fn int_tree<T: Clone + Debug + 'static>(v: T, origin: T, towards: fn(T, T) -> Vec<T>) -> Tree<T> {
    let o = origin.clone();
    let val = v.clone();
    Tree::with_children(v, move || {
        towards(o.clone(), val.clone())
            .into_iter()
            .map(|c| int_tree(c, o.clone(), towards))
            .collect()
    })
}

int_strategy!(u8, towards_u8);
int_strategy!(u16, towards_u16);
int_strategy!(u32, towards_u32);
int_strategy!(u64, towards_u64);
int_strategy!(usize, towards_usize);
int_strategy!(i32, towards_i32);
int_strategy!(i64, towards_i64);

// ---- floats ---------------------------------------------------------------

impl Strategy for Range<f64> {
    type Value = f64;
    fn tree(&self, rng: &mut StdRng) -> Tree<f64> {
        let v = rng.gen_range(self.clone());
        f64_tree(v, self.start)
    }
}

fn f64_tree(v: f64, origin: f64) -> Tree<f64> {
    Tree::with_children(v, move || {
        let mut out = Vec::new();
        if v != origin {
            out.push(origin);
            // halve the distance a few times; also try the integral part
            let mut diff = (v - origin) / 2.0;
            for _ in 0..8 {
                let c = v - diff;
                if c != origin && c != v {
                    out.push(c);
                }
                diff /= 2.0;
            }
            let t = v.trunc();
            if t != v && t >= origin.min(v) {
                out.push(t);
            }
        }
        out.dedup();
        out.into_iter().map(|c| f64_tree(c, origin)).collect()
    })
}

// ---- map / flat_map -------------------------------------------------------

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: Rc<F>,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug + 'static,
    F: Fn(S::Value) -> U + 'static,
{
    type Value = U;
    fn tree(&self, rng: &mut StdRng) -> Tree<U> {
        let f = self.f.clone();
        let g: Rc<dyn Fn(&S::Value) -> U> = Rc::new(move |v| f(v.clone()));
        self.inner.tree(rng).map(g)
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    outer: S,
    f: Rc<F>,
}

impl<A, S, F> Strategy for FlatMap<A, F>
where
    A: Strategy,
    S: Strategy + 'static,
    F: Fn(A::Value) -> S + 'static,
{
    type Value = S::Value;
    fn tree(&self, rng: &mut StdRng) -> Tree<S::Value> {
        let outer = self.outer.tree(rng);
        // snapshot the stream so shrunk outer values regenerate their
        // inner value deterministically
        let snapshot = rng.clone();
        // advance the live stream past the inner generation
        let t = bind_tree(outer, self.f.clone(), snapshot);
        let _ = rng.next_u64();
        t
    }
}

fn bind_tree<A, S, F>(outer: Tree<A>, f: Rc<F>, rng: StdRng) -> Tree<S::Value>
where
    A: Clone + 'static,
    S: Strategy + 'static,
    F: Fn(A) -> S + 'static,
{
    let strat = f(outer.value.clone());
    let mut r = rng.clone();
    let inner = strat.tree(&mut r);
    let inner2 = inner.clone();
    let f2 = f.clone();
    Tree::with_children(inner.value.clone(), move || {
        let mut out: Vec<Tree<S::Value>> = outer
            .children()
            .into_iter()
            .map(|oc| bind_tree(oc, f2.clone(), rng.clone()))
            .collect();
        out.extend(inner2.children());
        out
    })
}

// ---- collections ----------------------------------------------------------

/// Element-count bounds for collection strategies (inclusive).
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use super::*;

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A `BTreeSet` of distinct `element` values; the generator aims
    /// for a cardinality drawn from `size` (dense element domains may
    /// saturate below the target).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategy returned by [`collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn tree(&self, rng: &mut StdRng) -> Tree<Vec<S::Value>> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        let elems: Vec<Tree<S::Value>> = (0..n).map(|_| self.element.tree(rng)).collect();
        vec_tree(elems, self.size.min)
    }
}

fn vec_tree<T: Clone + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
    Tree::with_children(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        // remove aligned chunks, biggest first
        let mut k = n.saturating_sub(min_len);
        while k >= 1 {
            for start in (0..n).step_by(k) {
                if start + k > n {
                    break;
                }
                let mut rest = Vec::with_capacity(n - k);
                rest.extend(elems[..start].iter().cloned());
                rest.extend(elems[start + k..].iter().cloned());
                out.push(vec_tree(rest, min_len));
            }
            k /= 2;
        }
        // shrink one element in place
        for (i, e) in elems.iter().enumerate() {
            for c in e.children() {
                let mut next = elems.clone();
                next[i] = c;
                out.push(vec_tree(next, min_len));
            }
        }
        out
    })
}

/// Strategy returned by [`collection::btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn tree(&self, rng: &mut StdRng) -> Tree<BTreeSet<S::Value>> {
        let target = rng.gen_range(self.size.min..=self.size.max);
        let mut elems: Vec<Tree<S::Value>> = Vec::with_capacity(target);
        let mut seen: BTreeSet<S::Value> = BTreeSet::new();
        // bounded attempts: a dense element domain may not hold `target`
        // distinct values
        for _ in 0..(8 * target.max(1)) {
            if elems.len() == target {
                break;
            }
            let t = self.element.tree(rng);
            if seen.insert(t.value.clone()) {
                elems.push(t);
            }
        }
        set_tree(elems, self.size.min)
    }
}

fn set_tree<T: Clone + Ord + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<BTreeSet<T>> {
    let value: BTreeSet<T> = elems.iter().map(|e| e.value.clone()).collect();
    Tree::with_children(value, move || {
        let n = elems.len();
        let mut out = Vec::new();
        let mut k = n.saturating_sub(min_len);
        while k >= 1 {
            for start in (0..n).step_by(k) {
                if start + k > n {
                    break;
                }
                let mut rest = Vec::with_capacity(n - k);
                rest.extend(elems[..start].iter().cloned());
                rest.extend(elems[start + k..].iter().cloned());
                out.push(set_tree(rest, min_len));
            }
            k /= 2;
        }
        for (i, e) in elems.iter().enumerate() {
            for c in e.children() {
                let mut next = elems.clone();
                next[i] = c;
                // element shrinks may collide; keep the candidate only
                // if the set still meets the minimum cardinality
                let distinct: BTreeSet<&T> = next.iter().map(|t| &t.value).collect();
                if distinct.len() >= min_len {
                    out.push(set_tree(next, min_len));
                }
            }
        }
        out
    })
}

// ---- tuples ---------------------------------------------------------------

/// Zips two trees: shrink candidates simplify one component at a
/// time, left component first. Larger tuple arities nest pairs and
/// flatten with [`Tree::map`].
fn pair_tree<A: Clone + 'static, B: Clone + 'static>(a: Tree<A>, b: Tree<B>) -> Tree<(A, B)> {
    let value = (a.value.clone(), b.value.clone());
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        for ca in a.children() {
            out.push(pair_tree(ca, b.clone()));
        }
        for cb in b.children() {
            out.push(pair_tree(a.clone(), cb));
        }
        out
    })
}

impl<A: Strategy> Strategy for (A,) {
    type Value = (A::Value,);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        self.0.tree(rng).map(Rc::new(|v| (v.clone(),)))
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        pair_tree(self.0.tree(rng), self.1.tree(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        let ab = pair_tree(self.0.tree(rng), self.1.tree(rng));
        pair_tree(ab, self.2.tree(rng))
            .map(Rc::new(|((a, b), c)| (a.clone(), b.clone(), c.clone())))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        let ab = pair_tree(self.0.tree(rng), self.1.tree(rng));
        let abc = pair_tree(ab, self.2.tree(rng));
        pair_tree(abc, self.3.tree(rng)).map(Rc::new(|(((a, b), c), d)| {
            (a.clone(), b.clone(), c.clone(), d.clone())
        }))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        let ab = pair_tree(self.0.tree(rng), self.1.tree(rng));
        let abc = pair_tree(ab, self.2.tree(rng));
        let abcd = pair_tree(abc, self.3.tree(rng));
        pair_tree(abcd, self.4.tree(rng)).map(Rc::new(|((((a, b), c), d), e)| {
            (a.clone(), b.clone(), c.clone(), d.clone(), e.clone())
        }))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy, F: Strategy> Strategy
    for (A, B, C, D, E, F)
{
    type Value = (A::Value, B::Value, C::Value, D::Value, E::Value, F::Value);
    fn tree(&self, rng: &mut StdRng) -> Tree<Self::Value> {
        let ab = pair_tree(self.0.tree(rng), self.1.tree(rng));
        let abc = pair_tree(ab, self.2.tree(rng));
        let abcd = pair_tree(abc, self.3.tree(rng));
        let abcde = pair_tree(abcd, self.4.tree(rng));
        pair_tree(abcde, self.5.tree(rng)).map(Rc::new(|(((((a, b), c), d), e), f)| {
            (
                a.clone(),
                b.clone(),
                c.clone(),
                d.clone(),
                e.clone(),
                f.clone(),
            )
        }))
    }
}

// ---- select / just --------------------------------------------------------

/// One of the given choices, uniformly; shrinks toward the first.
pub fn select<T: Clone + Debug + 'static>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select on empty choices");
    Select { choices }
}

/// Strategy returned by [`select`].
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone + Debug + 'static> Strategy for Select<T> {
    type Value = T;
    fn tree(&self, rng: &mut StdRng) -> Tree<T> {
        let i = rng.gen_range(0..self.choices.len());
        let choices = self.choices.clone();
        int_tree(i, 0, towards_usize).map(Rc::new(move |&i| choices[i].clone()))
    }
}

/// Always the given value; never shrinks.
pub fn just<T: Clone + Debug + 'static>(value: T) -> Just<T> {
    Just { value }
}

/// Strategy returned by [`just`].
pub struct Just<T> {
    value: T,
}

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn tree(&self, _rng: &mut StdRng) -> Tree<T> {
        Tree::leaf(self.value.clone())
    }
}

// ---------------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------------

/// Per-property execution budget.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases.
    pub cases: u32,
    /// Cap on trial executions while shrinking a failure.
    pub max_shrink_steps: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: DEFAULT_CASES,
            max_shrink_steps: 4096,
        }
    }
}

impl Config {
    /// A config running `cases` cases (like
    /// `ProptestConfig::with_cases`).
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }

    /// Resolves the macro-level request (`0` = default) against the
    /// `FARMER_CHECK_CASES` environment override.
    pub fn resolve(requested: u32) -> Self {
        let mut cfg = if requested == 0 {
            Config::default()
        } else {
            Config::with_cases(requested)
        };
        if let Some(n) = env_u64("FARMER_CHECK_CASES") {
            cfg.cases = n as u32;
        }
        cfg
    }
}

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{name} must be an integer (decimal or 0x-hex), got {raw:?}"),
    }
}

thread_local! {
    static QUIET_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses reports
/// from threads currently executing property cases — shrinking
/// intentionally panics dozens of times.
fn install_quiet_hook() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !QUIET_PANICS.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn run_case<S, F>(test: &F, value: &S::Value) -> Option<String>
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    QUIET_PANICS.with(|q| q.set(true));
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| test(value.clone())));
    QUIET_PANICS.with(|q| q.set(false));
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(payload_message(&payload)),
    }
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` against `cfg.cases` generated values of `strategy`,
/// shrinking and reporting the first failure. This is the engine
/// behind the [`check!`](crate::check!) macro.
pub fn run<S, F>(name: &str, cfg: &Config, strategy: S, test: F)
where
    S: Strategy,
    F: Fn(S::Value) -> Result<(), String>,
{
    install_quiet_hook();
    let seed = env_u64("FARMER_CHECK_SEED").unwrap_or(DEFAULT_SEED);
    for case in 0..cfg.cases {
        // decorrelate cases while keeping each a pure function of
        // (seed, case index)
        let mut stream = seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(splitmix64(&mut stream));
        let tree = strategy.tree(&mut rng);
        if let Some(first_msg) = run_case::<S, F>(&test, &tree.value) {
            let original = format!("{:?}", tree.value);
            let (minimal, steps) = shrink_tree(
                tree,
                |v| run_case::<S, F>(&test, v).is_some(),
                cfg.max_shrink_steps,
            );
            let final_msg = run_case::<S, F>(&test, &minimal.value).unwrap_or(first_msg);
            panic!(
                "property `{name}` failed at case {case_n}/{total}\n\
                 minimal input (after {steps} shrink steps): {min:?}\n\
                 original input: {orig}\n\
                 error: {msg}\n\
                 replay with FARMER_CHECK_SEED={seed:#x}",
                case_n = case + 1,
                total = cfg.cases,
                min = minimal.value,
                orig = original,
                msg = final_msg,
            );
        }
    }
}

use crate::rng::splitmix64;

/// Everything a property-test file needs.
pub mod prelude {
    pub use super::{collection, just, select, Config, Strategy};
    pub use crate::{check, prop_assert, prop_assert_eq, prop_assert_ne};
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Declares property tests, proptest-style:
///
/// ```
/// farmer_support::check! {
///     #![config(cases = 64)]
///
///     #[test]
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         farmer_support::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
///
/// Each item becomes a plain `#[test]` function running
/// [`check::run`](crate::check::run) over the tuple of strategies. An
/// optional leading `#![config(cases = N)]` sets the case budget for
/// every property in the block.
#[macro_export]
macro_rules! check {
    (#![config(cases = $n:expr)] $($rest:tt)*) => {
        $crate::__check_items! { cases = $n; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__check_items! { cases = 0; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __check_items {
    (cases = $n:expr;) => {};
    (cases = $n:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $crate::check::Config::resolve($n);
            let strategy = ($($strat,)+);
            $crate::check::run(
                stringify!($name),
                &config,
                strategy,
                |($($arg,)+)| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__check_items! { cases = $n; $($rest)* }
    };
}

/// `assert!` under a name property tests can keep from their proptest
/// days; failures are caught and shrunk by the harness.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// See [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// See [`prop_assert!`](crate::prop_assert).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn range_strategy_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let t = (3usize..8).tree(&mut r);
            assert!((3..8).contains(&t.value));
            for c in t.children() {
                assert!((3..8).contains(&c.value));
                assert!(c.value < t.value);
            }
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut r = rng();
        for _ in 0..100 {
            let t = collection::vec(0u32..10, 2..5).tree(&mut r);
            assert!((2..5).contains(&t.value.len()));
            for c in t.children() {
                assert!(c.value.len() >= 2, "{:?}", c.value);
            }
        }
    }

    #[test]
    fn btree_set_respects_min_size() {
        let mut r = rng();
        for _ in 0..100 {
            let t = collection::btree_set(0u32..30, 1..6).tree(&mut r);
            assert!(!t.value.is_empty() && t.value.len() < 6);
            for c in t.children() {
                assert!(!c.value.is_empty());
            }
        }
    }

    #[test]
    fn map_shrinks_through_closure() {
        let mut r = rng();
        let t = (0usize..100).prop_map(|n| vec![7u8; n]).tree(&mut r);
        let (minimal, _) = shrink_tree(t, |v| v.len() >= 3, 1000);
        assert_eq!(minimal.value, vec![7u8; 3]);
    }

    #[test]
    fn flat_map_shrinks_outer_and_inner() {
        let mut r = rng();
        // dependent pair: (len, vec of that len)
        let strat = (1usize..20).prop_flat_map(|n| collection::vec(0u32..100, n));
        for _ in 0..50 {
            let t = strat.tree(&mut r);
            // property: no element >= 10 — force a failure when possible
            if t.value.iter().any(|&x| x >= 10) {
                let (minimal, _) = shrink_tree(t, |v| v.iter().any(|&x| x >= 10), 4096);
                assert_eq!(minimal.value, vec![10], "minimal counterexample");
                return;
            }
        }
        panic!("expected at least one generated vec with an element >= 10");
    }

    #[test]
    fn select_shrinks_toward_first() {
        let mut r = rng();
        let t = select(vec!["a", "b", "c"]).tree(&mut r);
        for c in t.children() {
            assert_eq!(c.value, "a");
        }
    }

    #[test]
    fn runner_passes_trivial_property() {
        run("trivial", &Config::with_cases(64), 0u32..10, |v| {
            assert!(v < 10);
            Ok(())
        });
    }

    #[test]
    fn runner_reports_shrunk_counterexample() {
        let outcome = std::panic::catch_unwind(|| {
            run(
                "planted",
                &Config::with_cases(256),
                collection::vec(0usize..1000, 0..30),
                |v| {
                    assert!(v.iter().sum::<usize>() < 50, "sum too large");
                    Ok(())
                },
            );
        });
        let msg = payload_message(&*outcome.expect_err("property must fail"));
        assert!(msg.contains("property `planted` failed"), "{msg}");
        assert!(msg.contains("minimal input"), "{msg}");
        assert!(msg.contains("FARMER_CHECK_SEED"), "{msg}");
        // greedy shrinking must reach a one-element vector [50]
        assert!(msg.contains("[50]"), "not minimal: {msg}");
    }

    #[test]
    fn tuple_strategy_shrinks_componentwise() {
        let mut r = rng();
        let t = (0u32..100, 0u32..100).tree(&mut r);
        let (a0, b0) = t.value;
        for c in t.children() {
            let (a, b) = c.value;
            assert!((a < a0 && b == b0) || (a == a0 && b < b0) || (a0 == 0 && b0 == 0));
        }
    }
}

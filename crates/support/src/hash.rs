//! FNV-1a 64-bit hashing.
//!
//! The workspace needs one stable, dependency-free hash in two places:
//! the store's artifact content checksum (`crates/store`) and the
//! serving index's item-set fingerprints (`crates/serve`). FNV-1a is
//! the standard pick for both — byte-at-a-time (so it streams), well
//! specified (so the digest can be pinned in a test and trusted across
//! platforms and releases), and with good dispersion on the short keys
//! we feed it. It is **not** cryptographic; nothing here defends
//! against adversarial inputs, only against accidental corruption.

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// The FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use farmer_support::hash::Fnv1a;
/// let mut h = Fnv1a::new();
/// h.write(b"foo");
/// h.write(b"bar");
/// assert_eq!(h.finish(), farmer_support::hash::fnv1a(b"foobar"));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fnv1a {
    state: u64,
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the offset basis.
    pub fn new() -> Self {
        Fnv1a { state: FNV_OFFSET }
    }

    /// Folds `bytes` into the running digest.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= b as u64;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Folds a little-endian `u64` into the digest (the store writes
    /// all integers little-endian, so checksumming through this method
    /// equals checksumming the serialized bytes).
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a little-endian `u32` into the digest.
    #[inline]
    pub fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// The current digest. The hasher stays usable afterwards.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64-bit digest of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Digest stability: these are the published FNV-1a 64 test
    /// vectors. If any of them ever changes, existing `.fgi` artifacts
    /// on disk would stop validating — this test pins the function for
    /// the lifetime of the format.
    #[test]
    fn pinned_reference_digests() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"b"), 0xaf63_df4c_8601_f1a5);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a(b"chongo was here!\n"), 0x4681_0940_eff5_f915);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        for split in 0..data.len() {
            let mut h = Fnv1a::new();
            h.write(&data[..split]);
            h.write(&data[split..]);
            assert_eq!(h.finish(), fnv1a(data), "split at {split}");
        }
    }

    #[test]
    fn integer_helpers_match_le_bytes() {
        let mut a = Fnv1a::new();
        a.write_u64(0x0102_0304_0506_0708);
        a.write_u32(0xdead_beef);
        let mut b = Fnv1a::new();
        b.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        b.write(&0xdead_beefu32.to_le_bytes());
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn single_bit_flips_change_digest() {
        let base = b"farmer artifact payload".to_vec();
        let d0 = fnv1a(&base);
        for i in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[i] ^= 1 << bit;
                assert_ne!(fnv1a(&flipped), d0, "flip byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn finish_is_idempotent() {
        let mut h = Fnv1a::new();
        h.write(b"xyz");
        assert_eq!(h.finish(), h.finish());
    }
}

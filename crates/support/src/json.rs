//! A small JSON value type with serialization, pretty-printing, and a
//! recursive-descent parser — enough to replace the external JSON
//! crates for the CLI's machine-readable output and the bench reports.
//!
//! Numbers are kept as either `i64` or `f64` so integer payloads
//! round-trip exactly; floats serialize via Rust's shortest-round-trip
//! `Display` formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// An integer-valued number.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Compact single-line serialization.
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Multi-line serialization indented by two spaces per level.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => out.push_str(&n.to_string()),
            Json::Float(x) => write_f64(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    let (k, v) = &fields[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                });
            }
        }
    }

    /// Looks up a key in an object; `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Element at `idx` in an array; `None` on other variants.
    pub fn at(&self, idx: usize) -> Option<&Json> {
        match self {
            Json::Arr(items) => items.get(idx),
            _ => None,
        }
    }

    /// Numeric value as `f64` (from `Int` or `Float`).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// Non-negative integer value.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Integer value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let bytes = input.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

/// `json["key"]` / `json[0]` sugar; panics on missing key like the
/// test-side indexing it replaces would surface anyway.
impl std::ops::Index<&str> for Json {
    type Output = Json;
    fn index(&self, key: &str) -> &Json {
        self.get(key)
            .unwrap_or_else(|| panic!("no key {key:?} in {self:?}"))
    }
}

impl std::ops::Index<usize> for Json {
    type Output = Json;
    fn index(&self, idx: usize) -> &Json {
        self.at(idx)
            .unwrap_or_else(|| panic!("no index {idx} in {self:?}"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        if n <= i64::MAX as u64 {
            Json::Int(n as i64)
        } else {
            Json::Float(n as f64)
        }
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as i64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::from(n as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}
impl<V: Into<Json>> From<BTreeMap<String, V>> for Json {
    fn from(map: BTreeMap<String, V>) -> Json {
        Json::Obj(map.into_iter().map(|(k, v)| (k, v.into())).collect())
    }
}

/// Builds a [`Json::Obj`] in insertion order.
#[derive(Clone, Debug, Default)]
pub struct ObjBuilder {
    fields: Vec<(String, Json)>,
}

impl ObjBuilder {
    /// An empty object builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a field.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Finalizes into a [`Json::Obj`].
    pub fn build(self) -> Json {
        Json::Obj(self.fields)
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // Display never uses exponent notation; avoid hundreds of
        // digits for extreme magnitudes
        let a = x.abs();
        let s = if a != 0.0 && !(1e-5..1e17).contains(&a) {
            format!("{x:e}")
        } else {
            format!("{x}")
        };
        out.push_str(&s);
        // "1" would parse back as an integer; keep the float marker
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; null is the conventional stand-in
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(w * depth));
    }
    out.push(close);
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parse failure with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        ParseError {
            offset,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::at(*pos, format!("expected {:?}", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, format!("expected `{lit}`")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes
                    .get(*pos)
                    .ok_or_else(|| ParseError::at(*pos, "unterminated escape"))?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let cp = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            // high surrogate: require the paired low one
                            expect(bytes, pos, b'\\')?;
                            expect(bytes, pos, b'u')?;
                            let lo = parse_hex4(bytes, pos)?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(ParseError::at(*pos, "invalid low surrogate"));
                            }
                            let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| ParseError::at(*pos, "invalid \\u escape"))?);
                    }
                    other => {
                        return Err(ParseError::at(
                            *pos,
                            format!("invalid escape \\{}", *other as char),
                        ))
                    }
                }
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| ParseError::at(*pos, "invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                if (c as u32) < 0x20 {
                    return Err(ParseError::at(*pos, "unescaped control character"));
                }
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, ParseError> {
    if *pos + 4 > bytes.len() {
        return Err(ParseError::at(*pos, "truncated \\u escape"));
    }
    let s = std::str::from_utf8(&bytes[*pos..*pos + 4])
        .map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
    let v = u32::from_str_radix(s, 16).map_err(|_| ParseError::at(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(v)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at(start, "expected a value"));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| ParseError::at(start, format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        let j = Json::Str("a\"b\\c\nd\te\u{0001}f".to_string());
        assert_eq!(j.to_string(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
    }

    #[test]
    fn serializes_nested_structures() {
        let j = ObjBuilder::new()
            .field("name", "farmer")
            .field("n", 42u64)
            .field("ratio", 0.5)
            .field("tags", vec!["a", "b"])
            .field("none", Json::Null)
            .build();
        assert_eq!(
            j.to_string(),
            r#"{"name":"farmer","n":42,"ratio":0.5,"tags":["a","b"],"none":null}"#
        );
    }

    #[test]
    fn pretty_print_indents_two_spaces() {
        let j = ObjBuilder::new()
            .field("a", 1i64)
            .field("b", vec![1i64, 2])
            .build();
        assert_eq!(
            j.pretty(),
            "{\n  \"a\": 1,\n  \"b\": [\n    1,\n    2\n  ]\n}"
        );
    }

    #[test]
    fn floats_keep_a_float_marker() {
        assert_eq!(Json::Float(2.0).to_string(), "2.0");
        assert_eq!(Json::Float(1e300).to_string(), "1e300");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_what_it_prints() {
        let j = ObjBuilder::new()
            .field("s", "he said \"hi\"\n\\done")
            .field("i", -7i64)
            .field("x", 3.25)
            .field("flag", true)
            .field("arr", Json::Arr(vec![Json::Null, Json::Int(0)]))
            .field("nested", ObjBuilder::new().field("k", "v").build())
            .build();
        assert_eq!(Json::parse(&j.to_string()).unwrap(), j);
        assert_eq!(Json::parse(&j.pretty()).unwrap(), j);
    }

    #[test]
    fn parses_unicode_escapes() {
        assert_eq!(
            Json::parse(r#""\u00e9 \ud83d\ude00""#).unwrap(),
            Json::Str("\u{00e9} \u{1F600}".to_string())
        );
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn indexing_and_accessors() {
        let j = Json::parse(r#"{"n_rows": 24, "names": ["x"], "p": 0.25}"#).unwrap();
        assert_eq!(j["n_rows"].as_u64(), Some(24));
        assert_eq!(j["names"][0].as_str(), Some("x"));
        assert_eq!(j["p"].as_f64(), Some(0.25));
        assert!(j.get("missing").is_none());
    }
}

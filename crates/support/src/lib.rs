//! Zero-dependency test & bench substrate for the FARMER workspace.
//!
//! The build environment is hermetic: no crates-io access. This crate
//! replaces every external dev/test dependency the workspace used to
//! pull in, with APIs shaped like the originals so call sites port
//! with import edits:
//!
//! * [`rng`] — seedable SplitMix64/xoshiro256++ PRNG with
//!   `gen_range`, `shuffle`, and Bernoulli/choice helpers.
//! * [`check`] — property-testing harness with generator combinators
//!   and greedy integrated shrinking (`FARMER_CHECK_SEED` /
//!   `FARMER_CHECK_CASES`).
//! * [`json`] — JSON value type with serializer, pretty-printer, and
//!   parser.
//! * [`thread`] — scoped threads, channels, and a poison-tolerant
//!   mutex over the standard library.
//! * [`bench`] — criterion-lite timer for `harness = false` bench
//!   binaries (`FARMER_BENCH_SAMPLES` / `FARMER_BENCH_JSON`).
//! * [`alloc`] — a counting global allocator for allocation-budget
//!   tests.
//! * [`hash`] — FNV-1a 64-bit hashing (artifact checksums, index
//!   fingerprints), with pinned reference digests.
//! * [`trace`] — statically dispatched phase spans, latency
//!   histograms, per-worker lock-free event rings, and Chrome-trace /
//!   Prometheus-text exporters.
//! * [`varint`] — LEB128 integer codec for the `.fgi` v2 artifact
//!   encoding.
//! * [`swap`] — arc-swap-style epoch pointer for hot-reloadable
//!   shared state, plus the SIGHUP reload flag.

#![warn(missing_docs)]

pub mod alloc;
pub mod bench;
pub mod check;
pub mod hash;
pub mod json;
pub mod rng;
pub mod swap;
pub mod thread;
pub mod trace;
pub mod varint;

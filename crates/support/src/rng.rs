//! Seedable pseudo-random numbers without external crates.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the
//! textbook combination: SplitMix64 decorrelates adjacent integer
//! seeds, xoshiro256++ passes BigCrush and costs a handful of ALU ops
//! per draw. The trait surface deliberately mirrors the subset of the
//! `rand` crate the workspace used (`StdRng::seed_from_u64`,
//! `gen`/`gen_range`/`gen_bool`, `SliceRandom::shuffle`), so call
//! sites read identically; only the `use` lines differ.
//!
//! Determinism is a feature, not an accident: every consumer in the
//! workspace seeds explicitly, and the test suite pins exact output
//! sequences.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard generator: xoshiro256++.
///
/// Cloning snapshots the stream — two clones produce identical
/// sequences, which the property-testing harness exploits to replay
/// generation during shrinking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

/// Construction of a generator from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        if s == [0; 4] {
            // xoshiro's one forbidden state; unreachable from SplitMix64
            // in practice, but the guard costs nothing
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// The uniform-draw surface shared by every consumer.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A value drawn from the type's standard distribution (`[0, 1)`
    /// for floats, uniform over all values for integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// A uniform draw from `range` (half-open or inclusive).
    ///
    /// Panics on an empty range. Generic over the output type so
    /// unsuffixed literals infer from context (`gen_range(1..=4)` in a
    /// `usize` position samples `usize`).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (Bernoulli draw); `p` must be in
    /// `[0, 1]`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        self.next_f64() < p
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Unbiased uniform draw in `[0, span)` via Lemire's multiply-shift
/// rejection method. `span` must be nonzero.
#[inline]
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

/// Types with a standard distribution for [`Rng::gen`].
pub trait Standard {
    /// Draws one value.
    fn standard<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl Standard for f32 {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    #[inline]
    fn standard<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample uniformly. Generic over
/// the output type (like `rand`) so literal types infer from context.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                match (hi as i128 - lo as i128) as u128 {
                    // the full u64-wide range cannot be expressed as a span
                    0x1_0000_0000_0000_0000.. => rng.next_u64() as $t,
                    span => lo.wrapping_add(uniform_below(rng, span as u64 + 1) as $t),
                }
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let u = rng.next_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                // guard the open upper bound against rounding
                if v >= self.end { self.start } else { v }
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Slice helpers mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;
    /// Uniform in-place permutation (Fisher–Yates).
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[uniform_below(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let sa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(sa, sb);
        let mut c = StdRng::seed_from_u64(43);
        let sc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_ne!(sa, sc, "adjacent seeds must decorrelate");
    }

    #[test]
    fn clone_snapshots_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&f));
            let u = rng.gen_range(9u32..=9);
            assert_eq!(u, 9);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "skewed counts {counts:?}");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..2000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..4000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((800..1200).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let set: BTreeSet<usize> = v.iter().copied().collect();
        assert_eq!(set.len(), 100);
        assert_eq!(set.iter().next_back(), Some(&99));
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle moved something");
        // determinism
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut w: Vec<usize> = (0..100).collect();
        w.shuffle(&mut rng2);
        assert_eq!(v, w);
    }

    #[test]
    fn choose_hits_every_element() {
        let mut rng = StdRng::seed_from_u64(6);
        let items = [10, 20, 30];
        let seen: BTreeSet<i32> = (0..200).map(|_| *items.choose(&mut rng).unwrap()).collect();
        assert_eq!(seen.len(), 3);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}

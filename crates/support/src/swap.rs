//! Atomic hot-swap pointer and the SIGHUP reload flag.
//!
//! [`Swap<T>`] is the arc-swap idiom on std primitives: a shared slot
//! holding an `Arc<T>` that readers snapshot and writers replace
//! atomically. Readers that loaded the old value keep a strong `Arc`
//! and finish on the old data; new readers see the new value. An epoch
//! counter increments on every store so observers can tell "the value
//! changed" apart from "the same value again" without comparing
//! pointers.
//!
//! Loads take an uncontended mutex for the instant of cloning the
//! `Arc` — nanoseconds next to the request work the snapshot feeds —
//! which keeps the implementation in safe code (the workspace bans
//! unsafe outside this crate) while preserving the operational
//! property that matters: swaps never block in-flight readers and
//! never drop data that a reader still holds.
//!
//! [`notify_on_sighup`] wires the classic ops reload signal to a flag
//! the serve accept loop polls between connections. The handler body
//! is a single atomic store, the only thing that is async-signal-safe.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// An atomically swappable `Arc<T>` with an epoch counter.
pub struct Swap<T> {
    slot: Mutex<Arc<T>>,
    epoch: AtomicU64,
}

impl<T> Swap<T> {
    /// Creates a swap slot holding `value` at epoch 0.
    pub fn new(value: Arc<T>) -> Self {
        Swap {
            slot: Mutex::new(value),
            epoch: AtomicU64::new(0),
        }
    }

    /// Snapshots the current value. The returned `Arc` stays valid
    /// (and the data alive) across any number of subsequent stores.
    pub fn load(&self) -> Arc<T> {
        match self.slot.lock() {
            Ok(g) => Arc::clone(&g),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    /// Replaces the value and bumps the epoch. Readers holding the old
    /// `Arc` are unaffected; the old value is dropped when the last of
    /// them finishes.
    pub fn store(&self, value: Arc<T>) {
        match self.slot.lock() {
            Ok(mut g) => *g = value,
            Err(poisoned) => *poisoned.into_inner() = value,
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// Number of stores since construction. A reader can cache the
    /// epoch alongside its snapshot to detect staleness cheaply.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

/// The flag [`notify_on_sighup`] arms. Separate statics per process —
/// there is exactly one SIGHUP — so this is a process-global.
static SIGHUP_FLAG: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod sighup_impl {
    use super::SIGHUP_FLAG;
    use std::sync::atomic::Ordering;

    /// `SIGHUP` on every unix the workspace targets.
    const SIGHUP: i32 = 1;
    /// `SIG_ERR` return from `signal(2)`.
    const SIG_ERR: usize = usize::MAX;

    extern "C" {
        /// libc `signal(2)`. The handler is passed as a raw address so
        /// the declaration stays free of platform fn-pointer types.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Async-signal-safe handler: one relaxed atomic store, nothing
    /// else. No allocation, no locks, no formatting.
    extern "C" fn on_sighup(_sig: i32) {
        SIGHUP_FLAG.store(true, Ordering::Relaxed);
    }

    pub(super) fn install() -> bool {
        // SAFETY: `signal` is the libc function of that name, already
        // linked by std; the handler performs only an atomic store,
        // which is async-signal-safe per POSIX.
        let prev = unsafe { signal(SIGHUP, on_sighup as *const () as usize) };
        prev != SIG_ERR
    }
}

/// Installs a `SIGHUP` handler that arms a process-global flag.
///
/// Returns `true` if the handler was installed (always `false` on
/// non-unix targets, where the artifact-reload endpoint remains the
/// only trigger). Poll [`take_sighup`] to consume the flag. Calling
/// this more than once is harmless.
pub fn notify_on_sighup() -> bool {
    #[cfg(unix)]
    {
        sighup_impl::install()
    }
    #[cfg(not(unix))]
    {
        false
    }
}

/// Consumes and returns the SIGHUP flag: `true` at most once per
/// delivered signal burst.
pub fn take_sighup() -> bool {
    SIGHUP_FLAG.swap(false, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn load_returns_stored_value_and_epoch_counts() {
        let s = Swap::new(Arc::new(1u32));
        assert_eq!(*s.load(), 1);
        assert_eq!(s.epoch(), 0);
        s.store(Arc::new(2));
        assert_eq!(*s.load(), 2);
        assert_eq!(s.epoch(), 1);
        s.store(Arc::new(3));
        assert_eq!(s.epoch(), 2);
    }

    #[test]
    fn old_snapshot_survives_swap() {
        struct DropCounter<'a>(u32, &'a AtomicUsize);
        impl Drop for DropCounter<'_> {
            fn drop(&mut self) {
                self.1.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = AtomicUsize::new(0);
        let s = Swap::new(Arc::new(DropCounter(1, &drops)));
        let old = s.load();
        s.store(Arc::new(DropCounter(2, &drops)));
        // The swapped-out value must stay alive while `old` holds it.
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        assert_eq!(old.0, 1);
        assert_eq!(s.load().0, 2);
        drop(old);
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_readers_see_monotone_epochs() {
        let s = Arc::new(Swap::new(Arc::new(0u64)));
        crate::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    let mut last = 0u64;
                    for _ in 0..1000 {
                        let v = *s.load();
                        assert!(v >= last, "value went backwards");
                        last = v;
                    }
                });
            }
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 1..=100u64 {
                    s.store(Arc::new(i));
                }
            });
        });
        assert_eq!(*s.load(), 100);
        assert_eq!(s.epoch(), 100);
    }

    #[cfg(unix)]
    #[test]
    fn sighup_flag_round_trip() {
        assert!(notify_on_sighup());
        assert!(!take_sighup());
        // Deliver a real SIGHUP to ourselves through the installed
        // handler path.
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        // SAFETY: raising a signal whose handler is the atomic-store
        // shim installed above.
        unsafe { raise(1) };
        assert!(take_sighup());
        assert!(!take_sighup());
    }
}

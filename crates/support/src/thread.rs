//! Scoped-thread and synchronization shims over the standard library.
//!
//! The API mirrors the external crates these replaced at their call
//! sites: [`scope`] works like the crossbeam scope (modulo the closure
//! taking no argument and the result not being wrapped in a
//! `Result`), and [`Mutex`] is a `std::sync::Mutex` whose `lock()`
//! returns the guard directly, treating poisoning as recoverable the
//! way parking_lot does.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::PoisonError;

pub use std::sync::mpsc::{channel, Receiver, Sender};
pub use std::thread::{Scope, ScopedJoinHandle};

/// A work-stealing index queue over a fixed range `0..len`: workers
/// claim disjoint chunks of indices with one atomic `fetch_add` each,
/// so load imbalance self-corrects — a worker stuck in a heavy item
/// simply claims fewer chunks while the others drain the rest.
///
/// This is deliberately the simplest stealing design that works for
/// "few heavy, independent items" workloads (FARMER's depth-1 subtrees):
/// there are no per-worker deques to steal *from*, just one shared
/// cursor, which is contention-free in practice because chunk claims are
/// rare relative to the work inside each item.
#[derive(Debug)]
pub struct StealQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl StealQueue {
    /// A queue over `0..len`, handing out chunks of `chunk` indices
    /// (clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        StealQueue {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, returning its index range, or `None` when
    /// the queue is drained. Each index is handed out exactly once
    /// across all callers.
    pub fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// An iterator of this queue's indices for one worker: repeatedly
    /// [`claim`](Self::claim)s chunks and yields their indices. Multiple
    /// workers iterate the same queue concurrently; together they see
    /// each index exactly once.
    pub fn stealing_iter(&self) -> StealingIter<'_> {
        StealingIter {
            queue: self,
            current: 0..0,
            claims: 0,
        }
    }
}

/// One worker's view of a [`StealQueue`]; see
/// [`StealQueue::stealing_iter`].
#[derive(Debug)]
pub struct StealingIter<'a> {
    queue: &'a StealQueue,
    current: std::ops::Range<usize>,
    claims: u64,
}

impl StealingIter<'_> {
    /// Chunks this worker claimed beyond its first — the "steals" in
    /// work-stealing parlance (the first claim is the worker's own
    /// share; later ones take work that a static split would have
    /// assigned elsewhere).
    pub fn steals(&self) -> u64 {
        self.claims.saturating_sub(1)
    }
}

impl Iterator for StealingIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some(i) = self.current.next() {
                return Some(i);
            }
            self.current = self.queue.claim()?;
            self.claims += 1;
        }
    }
}

/// Spawns scoped threads that may borrow from the enclosing stack
/// frame; joins them all before returning.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// A mutex whose `lock()` never forces the caller to handle
/// poisoning: a panic while holding the lock leaves the data
/// accessible to later lockers.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u32, 2, 3, 4];
        let total: u32 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_reexport_works_across_scope() {
        let (tx, rx) = channel();
        scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_queue_partitions_exactly() {
        let q = StealQueue::new(103, 4);
        let seen = Mutex::new(vec![0u32; 103]);
        let steals = Mutex::new(Vec::new());
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut it = q.stealing_iter();
                    let mut mine = Vec::new();
                    for i in it.by_ref() {
                        mine.push(i);
                    }
                    let mut guard = seen.lock();
                    for i in mine {
                        guard[i] += 1;
                    }
                    steals.lock().push(it.steals());
                });
            }
        });
        // every index claimed exactly once, by whichever worker got there
        assert!(seen.lock().iter().all(|&c| c == 1));
        // 103 items in chunks of 4 = 26 claims across 4 workers: at
        // least one worker claimed more than once
        assert_eq!(steals.lock().len(), 4);
        assert!(steals.lock().iter().sum::<u64>() >= 26 - 4);
    }

    #[test]
    fn steal_queue_empty_and_single() {
        let q = StealQueue::new(0, 8);
        assert_eq!(q.stealing_iter().count(), 0);
        let q = StealQueue::new(1, 8);
        let mut it = q.stealing_iter();
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), None);
        assert_eq!(it.steals(), 0);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Scoped-thread and synchronization shims over the standard library.
//!
//! The API mirrors the external crates these replaced at their call
//! sites: [`scope`] works like the crossbeam scope (modulo the closure
//! taking no argument and the result not being wrapped in a
//! `Result`), and [`Mutex`] is a `std::sync::Mutex` whose `lock()`
//! returns the guard directly, treating poisoning as recoverable the
//! way parking_lot does.

use std::sync::PoisonError;

pub use std::sync::mpsc::{channel, Receiver, Sender};
pub use std::thread::{Scope, ScopedJoinHandle};

/// Spawns scoped threads that may borrow from the enclosing stack
/// frame; joins them all before returning.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// A mutex whose `lock()` never forces the caller to handle
/// poisoning: a panic while holding the lock leaves the data
/// accessible to later lockers.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u32, 2, 3, 4];
        let total: u32 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_reexport_works_across_scope() {
        let (tx, rx) = channel();
        scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Scoped-thread and synchronization shims over the standard library.
//!
//! The API mirrors the external crates these replaced at their call
//! sites: [`scope`] works like the crossbeam scope (modulo the closure
//! taking no argument and the result not being wrapped in a
//! `Result`), and [`Mutex`] is a `std::sync::Mutex` whose `lock()`
//! returns the guard directly, treating poisoning as recoverable the
//! way parking_lot does.

use std::sync::atomic::{fence, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::PoisonError;

pub use std::sync::mpsc::{channel, Receiver, Sender};
pub use std::thread::{Scope, ScopedJoinHandle};

/// A fixed-capacity Chase-Lev work-stealing deque over plain `u64`
/// payloads: the owning worker pushes and pops at the bottom (LIFO, so
/// it keeps working the subtree it just split), thieves steal from the
/// top (FIFO, so they take the *oldest* — largest — pending task).
///
/// The payload is a bare `u64` (callers pack their task encoding into
/// it), which lets the buffer be a ring of `AtomicU64` slots and the
/// whole structure safe Rust: the one classically racy read — a thief
/// loading a slot the owner is concurrently recycling after the ring
/// wrapped — is an atomic load of a stale value whose `top` CAS then
/// fails, exactly the resolution the original algorithm relies on.
///
/// Capacity is fixed at construction (rounded up to a power of two):
/// [`push`](Self::push) reports `false` when the ring is full and the
/// caller simply keeps the task for itself — in a recursive search
/// "run it inline" is always a correct fallback, and a bounded ring
/// keeps the scheduler allocation-free after setup.
#[derive(Debug)]
pub struct WorkDeque {
    buf: Vec<AtomicU64>,
    mask: i64,
    /// Next steal position; only ever incremented (by a successful
    /// steal's CAS or the owner claiming the last element).
    top: AtomicI64,
    /// Next push position; written only by the owner.
    bottom: AtomicI64,
}

impl WorkDeque {
    /// A deque holding at most `capacity` tasks (rounded up to a power
    /// of two, at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        WorkDeque {
            buf: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as i64 - 1,
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
        }
    }

    fn slot(&self, index: i64) -> &AtomicU64 {
        &self.buf[(index & self.mask) as usize]
    }

    /// Owner-only: pushes `task` at the bottom. Returns `false` (task
    /// not enqueued) when the ring is full.
    pub fn push(&self, task: u64) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as i64 {
            return false;
        }
        self.slot(b).store(task, Ordering::Relaxed);
        // the Release pairs with the thief's Acquire load of `bottom`:
        // a thief that observes b+1 also observes the slot write
        self.bottom.store(b + 1, Ordering::Release);
        true
    }

    /// Owner-only: pops the most recently pushed task, racing thieves
    /// for the last element.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        // full fence: the bottom decrement must be globally visible
        // before we read `top`, or a concurrent thief and the owner
        // could both claim the same last element
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // empty: undo the reservation
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let task = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // last element: win it via the same CAS thieves use
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(task);
        }
        Some(task)
    }

    /// Thief: steals the oldest task. `None` means empty *or* lost a
    /// race — callers treat both as "nothing taken, look elsewhere".
    pub fn steal(&self) -> Option<u64> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let task = self.slot(t).load(Ordering::Relaxed);
        // the CAS validates the read: if the owner recycled the slot
        // (ring wrapped) or another thief won, `top` moved and we fail
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(task)
    }

    /// `true` when the deque currently holds no tasks (advisory under
    /// concurrency, exact when the owner is quiescent).
    pub fn is_empty(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        t >= b
    }
}

/// A work-stealing index queue over a fixed range `0..len`: workers
/// claim disjoint chunks of indices with one atomic `fetch_add` each,
/// so load imbalance self-corrects — a worker stuck in a heavy item
/// simply claims fewer chunks while the others drain the rest.
///
/// This is deliberately the simplest stealing design that works for
/// "few heavy, independent items" workloads (FARMER's depth-1 subtrees):
/// there are no per-worker deques to steal *from*, just one shared
/// cursor, which is contention-free in practice because chunk claims are
/// rare relative to the work inside each item.
#[derive(Debug)]
pub struct StealQueue {
    next: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl StealQueue {
    /// A queue over `0..len`, handing out chunks of `chunk` indices
    /// (clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        StealQueue {
            next: AtomicUsize::new(0),
            len,
            chunk: chunk.max(1),
        }
    }

    /// Claims the next chunk, returning its index range, or `None` when
    /// the queue is drained. Each index is handed out exactly once
    /// across all callers.
    pub fn claim(&self) -> Option<std::ops::Range<usize>> {
        let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            return None;
        }
        Some(start..(start + self.chunk).min(self.len))
    }

    /// An iterator of this queue's indices for one worker: repeatedly
    /// [`claim`](Self::claim)s chunks and yields their indices. Multiple
    /// workers iterate the same queue concurrently; together they see
    /// each index exactly once.
    pub fn stealing_iter(&self) -> StealingIter<'_> {
        StealingIter {
            queue: self,
            current: 0..0,
            claims: 0,
        }
    }
}

/// One worker's view of a [`StealQueue`]; see
/// [`StealQueue::stealing_iter`].
#[derive(Debug)]
pub struct StealingIter<'a> {
    queue: &'a StealQueue,
    current: std::ops::Range<usize>,
    claims: u64,
}

impl StealingIter<'_> {
    /// Chunks this worker claimed beyond its first — the "steals" in
    /// work-stealing parlance (the first claim is the worker's own
    /// share; later ones take work that a static split would have
    /// assigned elsewhere).
    pub fn steals(&self) -> u64 {
        self.claims.saturating_sub(1)
    }
}

impl Iterator for StealingIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if let Some(i) = self.current.next() {
                return Some(i);
            }
            self.current = self.queue.claim()?;
            self.claims += 1;
        }
    }
}

/// Spawns scoped threads that may borrow from the enclosing stack
/// frame; joins them all before returning.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// A mutex whose `lock()` never forces the caller to handle
/// poisoning: a panic while holding the lock leaves the data
/// accessible to later lockers.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_joins_and_returns() {
        let data = vec![1u32, 2, 3, 4];
        let total: u32 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        assert_eq!(total, 10);
    }

    #[test]
    fn channel_reexport_works_across_scope() {
        let (tx, rx) = channel();
        scope(|s| {
            for i in 0..4u32 {
                let tx = tx.clone();
                s.spawn(move || tx.send(i).unwrap());
            }
        });
        drop(tx);
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn steal_queue_partitions_exactly() {
        let q = StealQueue::new(103, 4);
        let seen = Mutex::new(vec![0u32; 103]);
        let steals = Mutex::new(Vec::new());
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let mut it = q.stealing_iter();
                    let mut mine = Vec::new();
                    for i in it.by_ref() {
                        mine.push(i);
                    }
                    let mut guard = seen.lock();
                    for i in mine {
                        guard[i] += 1;
                    }
                    steals.lock().push(it.steals());
                });
            }
        });
        // every index claimed exactly once, by whichever worker got there
        assert!(seen.lock().iter().all(|&c| c == 1));
        // 103 items in chunks of 4 = 26 claims across 4 workers: at
        // least one worker claimed more than once
        assert_eq!(steals.lock().len(), 4);
        assert!(steals.lock().iter().sum::<u64>() >= 26 - 4);
    }

    #[test]
    fn steal_queue_empty_and_single() {
        let q = StealQueue::new(0, 8);
        assert_eq!(q.stealing_iter().count(), 0);
        let q = StealQueue::new(1, 8);
        let mut it = q.stealing_iter();
        assert_eq!(it.next(), Some(0));
        assert_eq!(it.next(), None);
        assert_eq!(it.steals(), 0);
    }

    crate::check! {
        #![config(cases = 128)]

        /// Any interleaving of owner pushes/pops and (serialized) steals
        /// hands back exactly the accepted pushes — no loss, no
        /// duplication — with shrinking finding a minimal op script.
        #[test]
        fn work_deque_is_a_permutation_of_pushes(
            cap in crate::check::select(vec![2usize, 3, 5, 8]),
            script in crate::check::collection::vec(0u8..=255, 0..64),
        ) {
            let d = WorkDeque::new(cap);
            let mut pushed = Vec::new();
            let mut out = Vec::new();
            let mut next = 0u64;
            for op in script {
                match op {
                    0..=149 => {
                        if d.push(next) {
                            pushed.push(next);
                            next += 1;
                        }
                    }
                    150..=199 => out.extend(d.pop()),
                    _ => out.extend(d.steal()),
                }
            }
            while let Some(v) = d.pop() {
                out.push(v);
            }
            out.sort_unstable();
            crate::prop_assert_eq!(out, pushed);
        }
    }

    #[test]
    fn work_deque_empty_steal_and_pop() {
        let d = WorkDeque::new(8);
        assert!(d.is_empty());
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
        // stays usable after the empty probes
        assert!(d.push(7));
        assert_eq!(d.pop(), Some(7));
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn work_deque_owner_is_lifo_thief_is_fifo() {
        let d = WorkDeque::new(8);
        for v in 1..=4u64 {
            assert!(d.push(v));
        }
        assert_eq!(d.steal(), Some(1), "thief takes the oldest");
        assert_eq!(d.pop(), Some(4), "owner takes the newest");
        assert_eq!(d.steal(), Some(2));
        assert_eq!(d.pop(), Some(3));
        assert!(d.is_empty());
    }

    #[test]
    fn work_deque_full_push_fails_at_capacity_boundary() {
        // capacity rounds up to a power of two; the boundary push fails
        // and the deque still drains exactly what was accepted
        let d = WorkDeque::new(3);
        let mut accepted = 0u64;
        while d.push(100 + accepted) {
            accepted += 1;
        }
        assert_eq!(accepted, 4, "3 rounds up to 4 slots");
        assert!(!d.push(999), "full deque keeps rejecting");
        // freeing one slot re-enables pushing
        assert_eq!(d.steal(), Some(100));
        assert!(d.push(999));
        let mut drained = Vec::new();
        while let Some(v) = d.pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![101, 102, 103, 999]);
    }

    #[test]
    fn work_deque_single_item_owner_thief_race() {
        // the classic Chase-Lev corner: one element, owner popping while
        // a thief steals — exactly one side may win it, never both/none
        for _ in 0..200 {
            let d = WorkDeque::new(4);
            assert!(d.push(42));
            let (popped, stolen) = scope(|s| {
                let thief = s.spawn(|| d.steal());
                let popped = d.pop();
                (popped, thief.join().unwrap())
            });
            match (popped, stolen) {
                (Some(42), None) | (None, Some(42)) => {}
                other => panic!("single element claimed {other:?}"),
            }
        }
    }

    #[test]
    fn work_deque_steal_after_owner_abandons_work() {
        // a worker that halts (budget exhaustion) stops draining; the
        // tasks it leaves behind stay stealable by everyone else
        let d = WorkDeque::new(16);
        for v in 0..10u64 {
            assert!(d.push(v));
        }
        d.pop(); // owner ran one task, then halted
        let taken = Mutex::new(Vec::new());
        scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(v) = d.steal() {
                        taken.lock().push(v);
                    }
                });
            }
        });
        let mut got = taken.into_inner();
        got.sort_unstable();
        assert_eq!(got, (0..9u64).collect::<Vec<_>>());
        assert!(d.is_empty());
    }

    #[test]
    fn work_deque_concurrent_hammer_hands_out_each_task_once() {
        const TASKS: u64 = 2000;
        let d = WorkDeque::new(64);
        let seen = Mutex::new(vec![0u32; TASKS as usize]);
        scope(|s| {
            // three thieves churn while the owner pushes and pops
            for _ in 0..3 {
                s.spawn(|| loop {
                    match d.steal() {
                        Some(u64::MAX) => break,
                        Some(v) => seen.lock()[v as usize] += 1,
                        None => std::thread::yield_now(),
                    }
                });
            }
            let mut next = 0u64;
            while next < TASKS {
                if d.push(next) {
                    next += 1;
                } else if let Some(v) = d.pop() {
                    seen.lock()[v as usize] += 1;
                }
            }
            while let Some(v) = d.pop() {
                seen.lock()[v as usize] += 1;
            }
            // poison pills release the thieves (one each; a thief exits
            // after eating one)
            let mut pills = 0;
            while pills < 3 {
                if d.push(u64::MAX) {
                    pills += 1;
                }
            }
        });
        assert!(
            seen.lock().iter().all(|&c| c == 1),
            "every task claimed exactly once"
        );
    }

    #[test]
    fn mutex_recovers_from_poison() {
        let m = std::sync::Arc::new(Mutex::new(0u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

//! Hermetic tracing & metrics: phase spans, latency histograms, a
//! per-lane lock-free event log, and Chrome-trace / Prometheus-text
//! exporters — no external dependencies, consistent with the rest of
//! this crate.
//!
//! # Model
//!
//! * [`TraceSink`] is the instrumentation interface. Like
//!   `MineObserver` in `farmer-core` it is *statically dispatched* with
//!   no-op default bodies, so code instrumented against a generic
//!   `T: TraceSink` and run with [`NoopTracer`] monomorphizes to the
//!   exact uninstrumented machine code — the disabled path compiles to
//!   nothing.
//! * [`RingTracer`] is the live implementation: one fixed-capacity
//!   event lane per worker (single producer, no locks, atomic slots so
//!   the drain may read from another thread after the join), plus one
//!   set of atomic power-of-two-bucket histograms per lane.
//! * Overflow policy is **drop-newest**: once a lane is full, further
//!   events bump a drop counter and are discarded. Dropping the newest
//!   (rather than overwriting the oldest) keeps every retained
//!   begin/end pair intact, so a truncated trace is still loadable.
//! * [`RingTracer::drain`] (after all workers have joined) merges the
//!   lanes by timestamp into a [`TraceReport`], from which
//!   [`chrome_trace_json`] and [`prometheus_text`] render the two
//!   export formats.
//!
//! Span and histogram *identities* are plain `u16` indices into name
//! tables supplied at construction; the taxonomy itself lives with the
//! instrumented code (see `farmer-core::trace`), not here.

use crate::json::{Json, ObjBuilder};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

/// Identifies a span (phase) in the name table passed to
/// [`RingTracer::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u16);

/// Identifies a latency histogram in the name table passed to
/// [`RingTracer::new`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HistId(pub u16);

/// Identifies a named monotonic counter in the table passed to
/// [`RingTracer::with_metrics`]. Counters only ever grow; Prometheus
/// output renders them with the conventional `_total` suffix.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CounterId(pub u16);

/// Identifies a named gauge in the table passed to
/// [`RingTracer::with_metrics`]. Gauges move by signed deltas, so the
/// per-lane values merge by summation exactly like histograms: a value
/// raised on one lane and lowered on another nets out in the merged
/// report.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GaugeId(pub u16);

/// The instrumentation interface. Every method takes `&self` (sinks are
/// shared across worker threads) and has a no-op default body; a run
/// against [`NoopTracer`] compiles to the uninstrumented code.
///
/// `lane` identifies the emitting track: by convention lane 0 is the
/// main/sequential thread and lane `w + 1` is parallel worker `w`.
pub trait TraceSink: Sync {
    /// `true` iff events are being recorded. Instrumentation sites use
    /// this to skip *preparation* work (clock reads, deltas) — the
    /// recording calls themselves are already free when disabled.
    #[inline]
    fn enabled(&self) -> bool {
        false
    }

    /// Nanoseconds since the sink's epoch (session start). The disabled
    /// sink returns 0 without touching the clock.
    #[inline]
    fn now_ns(&self) -> u64 {
        0
    }

    /// A phase opened on `lane`.
    #[inline]
    fn begin(&self, lane: usize, span: SpanId) {
        let _ = (lane, span);
    }

    /// The innermost open phase closed on `lane`.
    #[inline]
    fn end(&self, lane: usize, span: SpanId) {
        let _ = (lane, span);
    }

    /// A point event (e.g. a work-steal) on `lane`.
    #[inline]
    fn instant(&self, lane: usize, span: SpanId) {
        let _ = (lane, span);
    }

    /// A counter sample (e.g. nodes visited so far) on `lane`.
    #[inline]
    fn counter(&self, lane: usize, span: SpanId, value: u64) {
        let _ = (lane, span, value);
    }

    /// Records `ns` into histogram `hist` on `lane`.
    #[inline]
    fn duration_ns(&self, lane: usize, hist: HistId, ns: u64) {
        let _ = (lane, hist, ns);
    }

    /// Adds `delta` to monotonic counter `counter` on `lane`.
    #[inline]
    fn add(&self, lane: usize, counter: CounterId, delta: u64) {
        let _ = (lane, counter, delta);
    }

    /// Moves gauge `gauge` by the signed `delta` on `lane`. The merged
    /// gauge value is the sum of every lane's deltas, so raising on one
    /// lane and lowering on another is well defined.
    #[inline]
    fn gauge_add(&self, lane: usize, gauge: GaugeId, delta: i64) {
        let _ = (lane, gauge, delta);
    }
}

/// The do-nothing sink: monomorphizes instrumented code back into the
/// uninstrumented code (pinned by the core alloc-guard and the
/// `BENCH_PR4.json` overhead bound).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl TraceSink for NoopTracer {}

/// RAII guard for a phase span: emits `begin` on construction (via
/// [`span`]) and `end` on drop, so early returns and `?` cannot leave a
/// phase open.
#[derive(Debug)]
pub struct Span<'a, T: TraceSink + ?Sized> {
    sink: &'a T,
    lane: usize,
    id: SpanId,
}

/// Opens a span on `sink`; the phase closes when the guard drops.
#[inline]
pub fn span<T: TraceSink + ?Sized>(sink: &T, lane: usize, id: SpanId) -> Span<'_, T> {
    sink.begin(lane, id);
    Span { sink, lane, id }
}

impl<T: TraceSink + ?Sized> Drop for Span<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.sink.end(self.lane, self.id);
    }
}

/// Number of histogram buckets: bucket 0 holds the value 0 and bucket
/// `k ≥ 1` holds values in `[2^(k-1), 2^k)`, up to `u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `k` (`0` for bucket 0, else
/// `2^k - 1`). Used as the `le` label in Prometheus output and as the
/// value reported by [`Histogram::quantile`].
#[inline]
pub fn bucket_upper(k: usize) -> u64 {
    if k == 0 {
        0
    } else if k >= 64 {
        u64::MAX
    } else {
        (1u64 << k) - 1
    }
}

/// A fixed-bucket latency histogram with power-of-two buckets,
/// mergeable across workers. Quantiles come back as the upper bound of
/// the bucket containing the requested rank — coarse (factor-of-two)
/// but allocation-free and merge-exact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, v: u64) {
        self.counts[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts (see [`bucket_upper`] for the bucket bounds).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.counts
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), or 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(k);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }
}

/// Lock-free histogram a lane records into while the drain may later
/// read from another thread.
struct AtomicHistogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHistogram {
    fn new() -> Self {
        AtomicHistogram {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    fn record(&self, v: u64) {
        self.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Histogram {
        let mut h = Histogram::new();
        for (k, c) in self.counts.iter().enumerate() {
            h.counts[k] = c.load(Ordering::Relaxed);
        }
        h.count = self.count.load(Ordering::Relaxed);
        h.sum = self.sum.load(Ordering::Relaxed);
        h
    }
}

/// What an event slot records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A phase opened ([`TraceSink::begin`]).
    Begin,
    /// A phase closed ([`TraceSink::end`]).
    End,
    /// A point event ([`TraceSink::instant`]).
    Instant,
    /// A counter sample ([`TraceSink::counter`]).
    Counter,
}

/// One drained event record.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// Nanoseconds since session start.
    pub t_ns: u64,
    /// Emitting lane (0 = main, `w + 1` = worker `w`).
    pub lane: usize,
    /// Event kind.
    pub kind: EventKind,
    /// Index into the span name table.
    pub span: u16,
    /// Counter value (0 for non-counter events).
    pub value: u64,
}

/// One fixed-size event slot: timestamp, packed kind+span tag, value.
/// Slots are written by exactly one producer (the lane's owner) but
/// read by the draining thread, hence atomics; `farmer-support` stays
/// `unsafe`-free like the rest of the workspace.
struct Slot {
    t: AtomicU64,
    tag: AtomicU64,
    value: AtomicU64,
}

struct Lane {
    head: AtomicU64,
    dropped: AtomicU64,
    slots: Vec<Slot>,
}

impl Lane {
    fn new(capacity: usize) -> Self {
        Lane {
            head: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    t: AtomicU64::new(0),
                    tag: AtomicU64::new(0),
                    value: AtomicU64::new(0),
                })
                .collect(),
        }
    }
}

/// The live sink: per-lane event rings + per-lane atomic histograms,
/// drained into a [`TraceReport`] after the run.
pub struct RingTracer {
    start: Instant,
    span_names: &'static [&'static str],
    hist_names: &'static [&'static str],
    counter_names: &'static [&'static str],
    gauge_names: &'static [&'static str],
    lanes: Vec<Lane>,
    hists: Vec<Vec<AtomicHistogram>>,
    counters: Vec<Vec<AtomicU64>>,
    gauges: Vec<Vec<AtomicI64>>,
}

impl RingTracer {
    /// A tracer with `n_lanes` event lanes of `capacity` slots each and
    /// one histogram set per lane. `n_lanes` and `capacity` are clamped
    /// to at least 1.
    pub fn new(
        span_names: &'static [&'static str],
        hist_names: &'static [&'static str],
        n_lanes: usize,
        capacity: usize,
    ) -> Self {
        Self::with_metrics(span_names, hist_names, &[], &[], n_lanes, capacity)
    }

    /// [`RingTracer::new`] plus named monotonic counters and gauges:
    /// one atomic cell per (lane, name), merged by summation at drain
    /// time exactly like the histograms.
    pub fn with_metrics(
        span_names: &'static [&'static str],
        hist_names: &'static [&'static str],
        counter_names: &'static [&'static str],
        gauge_names: &'static [&'static str],
        n_lanes: usize,
        capacity: usize,
    ) -> Self {
        let n_lanes = n_lanes.max(1);
        let capacity = capacity.max(1);
        RingTracer {
            start: Instant::now(),
            span_names,
            hist_names,
            counter_names,
            gauge_names,
            lanes: (0..n_lanes).map(|_| Lane::new(capacity)).collect(),
            hists: (0..n_lanes)
                .map(|_| {
                    (0..hist_names.len())
                        .map(|_| AtomicHistogram::new())
                        .collect()
                })
                .collect(),
            counters: (0..n_lanes)
                .map(|_| {
                    (0..counter_names.len())
                        .map(|_| AtomicU64::new(0))
                        .collect()
                })
                .collect(),
            gauges: (0..n_lanes)
                .map(|_| (0..gauge_names.len()).map(|_| AtomicI64::new(0)).collect())
                .collect(),
        }
    }

    /// Number of event lanes.
    pub fn n_lanes(&self) -> usize {
        self.lanes.len()
    }

    #[inline]
    fn push(&self, lane: usize, kind: EventKind, span: SpanId, value: u64) {
        let t = self.now_ns();
        let lane = &self.lanes[lane.min(self.lanes.len() - 1)];
        let idx = lane.head.fetch_add(1, Ordering::Relaxed) as usize;
        if idx < lane.slots.len() {
            let slot = &lane.slots[idx];
            slot.t.store(t, Ordering::Relaxed);
            slot.tag
                .store(((span.0 as u64) << 8) | kind as u64, Ordering::Relaxed);
            slot.value.store(value, Ordering::Release);
        } else {
            lane.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshots every lane into a timestamp-merged [`TraceReport`].
    /// Call after all recording threads have joined — the drain reads
    /// with relaxed atomics and does not synchronize with producers.
    pub fn drain(&self) -> TraceReport {
        let total_ns = self.now_ns();
        let mut events = Vec::new();
        let mut dropped = Vec::with_capacity(self.lanes.len());
        for (li, lane) in self.lanes.iter().enumerate() {
            let filled = (lane.head.load(Ordering::Relaxed) as usize).min(lane.slots.len());
            for slot in &lane.slots[..filled] {
                let value = slot.value.load(Ordering::Acquire);
                let tag = slot.tag.load(Ordering::Relaxed);
                let kind = match tag & 0xff {
                    0 => EventKind::Begin,
                    1 => EventKind::End,
                    2 => EventKind::Instant,
                    _ => EventKind::Counter,
                };
                events.push(TraceEvent {
                    t_ns: slot.t.load(Ordering::Relaxed),
                    lane: li,
                    kind,
                    span: (tag >> 8) as u16,
                    value,
                });
            }
            dropped.push(lane.dropped.load(Ordering::Relaxed));
        }
        // Lanes are individually time-ordered (single producer, one
        // monotonic clock); a stable sort by timestamp merges them
        // while preserving per-lane order on ties.
        events.sort_by_key(|e| e.t_ns);
        let lane_hists: Vec<Vec<Histogram>> = self
            .hists
            .iter()
            .map(|per_lane| per_lane.iter().map(AtomicHistogram::snapshot).collect())
            .collect();
        let mut hists = vec![Histogram::new(); self.hist_names.len()];
        for per_lane in &lane_hists {
            for (h, lh) in hists.iter_mut().zip(per_lane.iter()) {
                h.merge(lh);
            }
        }
        let lane_counters: Vec<Vec<u64>> = self
            .counters
            .iter()
            .map(|per_lane| per_lane.iter().map(|c| c.load(Ordering::Relaxed)).collect())
            .collect();
        let mut counters = vec![0u64; self.counter_names.len()];
        for per_lane in &lane_counters {
            for (c, lc) in counters.iter_mut().zip(per_lane.iter()) {
                *c += lc;
            }
        }
        let lane_gauges: Vec<Vec<i64>> = self
            .gauges
            .iter()
            .map(|per_lane| per_lane.iter().map(|g| g.load(Ordering::Relaxed)).collect())
            .collect();
        let mut gauges = vec![0i64; self.gauge_names.len()];
        for per_lane in &lane_gauges {
            for (g, lg) in gauges.iter_mut().zip(per_lane.iter()) {
                *g += lg;
            }
        }
        TraceReport {
            span_names: self.span_names.iter().map(|s| s.to_string()).collect(),
            hist_names: self.hist_names.iter().map(|s| s.to_string()).collect(),
            counter_names: self.counter_names.iter().map(|s| s.to_string()).collect(),
            gauge_names: self.gauge_names.iter().map(|s| s.to_string()).collect(),
            events,
            hists,
            lane_hists,
            counters,
            lane_counters,
            gauges,
            lane_gauges,
            dropped,
            total_ns,
        }
    }
}

impl TraceSink for RingTracer {
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    #[inline]
    fn begin(&self, lane: usize, span: SpanId) {
        self.push(lane, EventKind::Begin, span, 0);
    }

    #[inline]
    fn end(&self, lane: usize, span: SpanId) {
        self.push(lane, EventKind::End, span, 0);
    }

    #[inline]
    fn instant(&self, lane: usize, span: SpanId) {
        self.push(lane, EventKind::Instant, span, 0);
    }

    #[inline]
    fn counter(&self, lane: usize, span: SpanId, value: u64) {
        self.push(lane, EventKind::Counter, span, value);
    }

    #[inline]
    fn duration_ns(&self, lane: usize, hist: HistId, ns: u64) {
        let lane = lane.min(self.hists.len() - 1);
        if let Some(h) = self.hists[lane].get(hist.0 as usize) {
            h.record(ns);
        }
    }

    #[inline]
    fn add(&self, lane: usize, counter: CounterId, delta: u64) {
        let lane = lane.min(self.counters.len() - 1);
        if let Some(c) = self.counters[lane].get(counter.0 as usize) {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    #[inline]
    fn gauge_add(&self, lane: usize, gauge: GaugeId, delta: i64) {
        let lane = lane.min(self.gauges.len() - 1);
        if let Some(g) = self.gauges[lane].get(gauge.0 as usize) {
            g.fetch_add(delta, Ordering::Relaxed);
        }
    }
}

/// Accumulated wall time and call count of one span across the run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanTotal {
    /// Total nanoseconds between paired begin/end events (an unmatched
    /// `begin` accumulates until the drain timestamp).
    pub total_ns: u64,
    /// `begin` + `instant` events.
    pub count: u64,
}

/// Everything drained from a [`RingTracer`]: the merged event log,
/// per-lane and merged histograms, and drop counts.
#[derive(Clone, Debug)]
pub struct TraceReport {
    /// Span name table (index = [`TraceEvent::span`]).
    pub span_names: Vec<String>,
    /// Histogram name table.
    pub hist_names: Vec<String>,
    /// Monotonic counter name table.
    pub counter_names: Vec<String>,
    /// Gauge name table.
    pub gauge_names: Vec<String>,
    /// All events, merged across lanes in timestamp order.
    pub events: Vec<TraceEvent>,
    /// Histograms merged across lanes, indexed by [`HistId`].
    pub hists: Vec<Histogram>,
    /// Per-lane histograms: `lane_hists[lane][hist]`.
    pub lane_hists: Vec<Vec<Histogram>>,
    /// Counters summed across lanes, indexed by [`CounterId`].
    pub counters: Vec<u64>,
    /// Per-lane counters: `lane_counters[lane][counter]`.
    pub lane_counters: Vec<Vec<u64>>,
    /// Gauges (net delta sums across lanes), indexed by [`GaugeId`].
    pub gauges: Vec<i64>,
    /// Per-lane gauge deltas: `lane_gauges[lane][gauge]`.
    pub lane_gauges: Vec<Vec<i64>>,
    /// Events dropped per lane (ring overflow, drop-newest policy).
    pub dropped: Vec<u64>,
    /// Drain timestamp, nanoseconds since session start.
    pub total_ns: u64,
}

impl TraceReport {
    /// Number of lanes.
    pub fn n_lanes(&self) -> usize {
        self.dropped.len()
    }

    /// Total events dropped across all lanes.
    pub fn dropped_total(&self) -> u64 {
        self.dropped.iter().sum()
    }

    /// Per-span accumulated wall time and call counts, indexed like
    /// [`TraceReport::span_names`]. Begin/end events pair up per lane
    /// (spans nest within a lane); an unmatched begin runs to the drain
    /// timestamp.
    pub fn span_totals(&self) -> Vec<SpanTotal> {
        let mut totals = vec![SpanTotal::default(); self.span_names.len()];
        // open[lane] = stack of (span, t_begin)
        let mut open: Vec<Vec<(u16, u64)>> = vec![Vec::new(); self.n_lanes()];
        for e in &self.events {
            let Some(t) = totals.get_mut(e.span as usize) else {
                continue;
            };
            match e.kind {
                EventKind::Begin => {
                    t.count += 1;
                    open[e.lane].push((e.span, e.t_ns));
                }
                EventKind::End => {
                    // Pop to the matching begin; drop-newest overflow can
                    // orphan an end, which we then ignore.
                    if let Some(pos) = open[e.lane].iter().rposition(|&(s, _)| s == e.span) {
                        let (_, t0) = open[e.lane].remove(pos);
                        t.total_ns += e.t_ns.saturating_sub(t0);
                    }
                }
                EventKind::Instant | EventKind::Counter => t.count += 1,
            }
        }
        for stack in open {
            for (s, t0) in stack {
                totals[s as usize].total_ns += self.total_ns.saturating_sub(t0);
            }
        }
        totals
    }
}

fn lane_label(lane: usize) -> String {
    if lane == 0 {
        "main".to_string()
    } else {
        format!("worker-{}", lane - 1)
    }
}

/// Renders a report as Chrome trace-event JSON (the format
/// `chrome://tracing` and Perfetto load): one `pid`, one `tid` per
/// lane, `B`/`E` duration events, `i` instants, `C` counters, plus
/// `thread_name` metadata so each worker gets a labeled track.
pub fn chrome_trace_json(r: &TraceReport) -> Json {
    let unknown = "?".to_string();
    let name_of = |span: u16| r.span_names.get(span as usize).unwrap_or(&unknown).as_str();
    let mut events = Vec::with_capacity(r.events.len() + r.n_lanes());
    for lane in 0..r.n_lanes() {
        events.push(
            ObjBuilder::new()
                .field("name", "thread_name")
                .field("ph", "M")
                .field("pid", 1u64)
                .field("tid", lane as u64)
                .field(
                    "args",
                    ObjBuilder::new().field("name", lane_label(lane)).build(),
                )
                .build(),
        );
    }
    for e in &r.events {
        let base = ObjBuilder::new()
            .field("name", name_of(e.span))
            .field("ts", e.t_ns as f64 / 1000.0)
            .field("pid", 1u64)
            .field("tid", e.lane as u64);
        events.push(match e.kind {
            EventKind::Begin => base.field("ph", "B").build(),
            EventKind::End => base.field("ph", "E").build(),
            EventKind::Instant => base.field("ph", "i").field("s", "t").build(),
            EventKind::Counter => base
                .field("ph", "C")
                .field(
                    "args",
                    ObjBuilder::new().field(name_of(e.span), e.value).build(),
                )
                .build(),
        });
    }
    ObjBuilder::new()
        .field("traceEvents", Json::Arr(events))
        .field("displayTimeUnit", "ms")
        .build()
}

/// The Prometheus family name of a monotonic counter: `farmer_` prefix
/// plus the conventional `_total` suffix (not doubled when the name
/// already carries it).
pub fn counter_family(name: &str) -> String {
    if name.ends_with("_total") {
        format!("farmer_{name}")
    } else {
        format!("farmer_{name}_total")
    }
}

/// Renders a report as Prometheus text exposition: span seconds/calls
/// counters, the named counter (`_total`) and gauge families, one
/// native histogram family per latency histogram (cumulative
/// `_bucket{le=…}` + `_sum` + `_count`), and the dropped-event
/// counter. Every family carries its `# HELP` and `# TYPE` lines once;
/// metric names are prefixed `farmer_`.
pub fn prometheus_text(r: &TraceReport) -> String {
    let mut out = String::new();
    let totals = r.span_totals();

    out.push_str("# HELP farmer_span_seconds_total Wall time accumulated per phase span.\n");
    out.push_str("# TYPE farmer_span_seconds_total counter\n");
    for (name, t) in r.span_names.iter().zip(totals.iter()) {
        out.push_str(&format!(
            "farmer_span_seconds_total{{span=\"{name}\"}} {}\n",
            t.total_ns as f64 / 1e9
        ));
    }
    out.push_str("# HELP farmer_span_calls_total Begin/instant events per phase span.\n");
    out.push_str("# TYPE farmer_span_calls_total counter\n");
    for (name, t) in r.span_names.iter().zip(totals.iter()) {
        out.push_str(&format!(
            "farmer_span_calls_total{{span=\"{name}\"}} {}\n",
            t.count
        ));
    }

    for (name, v) in r.counter_names.iter().zip(r.counters.iter()) {
        let family = counter_family(name);
        out.push_str(&format!(
            "# HELP {family} Monotonic count of {name} events.\n\
             # TYPE {family} counter\n{family} {v}\n"
        ));
    }
    for (name, v) in r.gauge_names.iter().zip(r.gauges.iter()) {
        let family = format!("farmer_{name}");
        out.push_str(&format!(
            "# HELP {family} Current value of the {name} gauge.\n\
             # TYPE {family} gauge\n{family} {v}\n"
        ));
    }

    for (name, h) in r.hist_names.iter().zip(r.hists.iter()) {
        let family = format!("farmer_{name}_ns");
        out.push_str(&format!(
            "# HELP {family} Latency of {name} in nanoseconds.\n# TYPE {family} histogram\n"
        ));
        let mut cumulative = 0u64;
        let last_nonempty = h.buckets().iter().rposition(|&c| c > 0).unwrap_or(0);
        for (k, &c) in h.buckets().iter().enumerate().take(last_nonempty + 1) {
            cumulative += c;
            out.push_str(&format!(
                "{family}_bucket{{le=\"{}\"}} {cumulative}\n",
                bucket_upper(k)
            ));
        }
        out.push_str(&format!("{family}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
        out.push_str(&format!("{family}_sum {}\n", h.sum()));
        out.push_str(&format!("{family}_count {}\n", h.count()));
    }

    out.push_str(
        "# HELP farmer_trace_dropped_events_total Events lost to ring overflow (drop-newest).\n",
    );
    out.push_str("# TYPE farmer_trace_dropped_events_total counter\n");
    out.push_str(&format!(
        "farmer_trace_dropped_events_total {}\n",
        r.dropped_total()
    ));
    out
}

/// Renders the `trace` block folded into the CLI's `--stats-json`
/// report: per-span totals, per-histogram p50/p95/p99, and drop counts.
pub fn trace_stats_json(r: &TraceReport) -> Json {
    let totals = r.span_totals();
    let spans: Vec<Json> = r
        .span_names
        .iter()
        .zip(totals.iter())
        .filter(|(_, t)| t.count > 0 || t.total_ns > 0)
        .map(|(name, t)| {
            ObjBuilder::new()
                .field("name", name.as_str())
                .field("total_ns", t.total_ns)
                .field("count", t.count)
                .build()
        })
        .collect();
    let hists: Vec<Json> = r
        .hist_names
        .iter()
        .zip(r.hists.iter())
        .map(|(name, h)| {
            ObjBuilder::new()
                .field("name", name.as_str())
                .field("count", h.count())
                .field("sum_ns", h.sum())
                .field("p50_ns", h.quantile(0.50))
                .field("p95_ns", h.quantile(0.95))
                .field("p99_ns", h.quantile(0.99))
                .build()
        })
        .collect();
    ObjBuilder::new()
        .field("lanes", r.n_lanes() as u64)
        .field("spans", Json::Arr(spans))
        .field("hists", Json::Arr(hists))
        .field("dropped_events", r.dropped_total())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPANS: &[&str] = &["alpha", "beta", "gamma"];
    const HISTS: &[&str] = &["visit", "scan"];
    const ALPHA: SpanId = SpanId(0);
    const BETA: SpanId = SpanId(1);
    const GAMMA: SpanId = SpanId(2);
    const VISIT: HistId = HistId(0);

    #[test]
    fn noop_tracer_is_disabled_and_zero_sized() {
        let t = NoopTracer;
        assert!(!t.enabled());
        assert_eq!(t.now_ns(), 0);
        assert_eq!(std::mem::size_of::<NoopTracer>(), 0);
        // all hooks are callable no-ops
        t.begin(0, ALPHA);
        t.end(0, ALPHA);
        t.instant(3, BETA);
        t.counter(1, GAMMA, 7);
        t.duration_ns(0, VISIT, 9);
        let _guard = span(&t, 0, ALPHA);
    }

    #[test]
    fn histogram_buckets_quantiles_and_merge() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1049);
        assert_eq!(h.buckets()[0], 1); // 0
        assert_eq!(h.buckets()[1], 1); // 1
        assert_eq!(h.buckets()[2], 2); // 2,3
        assert_eq!(h.buckets()[3], 2); // 4,7
        assert_eq!(h.buckets()[4], 1); // 8
        assert_eq!(h.buckets()[11], 1); // 1024
                                        // the median of 8 observations lands in bucket 2 (le=3)
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), bucket_upper(11));
        let mut other = Histogram::new();
        other.record(u64::MAX);
        other.merge(&h);
        assert_eq!(other.count(), 9);
        assert_eq!(other.buckets()[64], 1);
        assert_eq!(other.quantile(1.0), u64::MAX);
    }

    #[test]
    fn ring_records_merges_lanes_and_counts_spans() {
        let t = RingTracer::new(SPANS, HISTS, 3, 128);
        assert!(t.enabled());
        {
            let _outer = span(&t, 0, ALPHA);
            t.instant(1, GAMMA);
            let _inner = span(&t, 0, BETA);
            t.counter(2, GAMMA, 42);
        }
        t.duration_ns(0, VISIT, 100);
        t.duration_ns(1, VISIT, 200);
        let r = t.drain();
        assert_eq!(r.n_lanes(), 3);
        assert_eq!(r.events.len(), 6);
        assert!(r.events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));
        assert_eq!(r.dropped_total(), 0);
        let totals = r.span_totals();
        assert_eq!(totals[0].count, 1);
        assert_eq!(totals[1].count, 1);
        assert_eq!(totals[2].count, 2); // instant + counter
        assert!(totals[0].total_ns >= totals[1].total_ns); // alpha encloses beta
                                                           // merged histogram equals the sum of the per-lane ones
        assert_eq!(r.hists[0].count(), 2);
        assert_eq!(r.hists[0].sum(), 300);
        let lane_sum: u64 = r.lane_hists.iter().map(|l| l[0].count()).sum();
        assert_eq!(r.hists[0].count(), lane_sum);
        assert_eq!(r.hists[1].count(), 0);
    }

    #[test]
    fn ring_overflow_drops_newest_and_counts() {
        let t = RingTracer::new(SPANS, HISTS, 1, 4);
        for _ in 0..10 {
            t.instant(0, ALPHA);
        }
        let r = t.drain();
        assert_eq!(r.events.len(), 4);
        assert_eq!(r.dropped, vec![6]);
        assert_eq!(r.dropped_total(), 6);
    }

    #[test]
    fn unmatched_begin_runs_to_drain_time() {
        let t = RingTracer::new(SPANS, HISTS, 1, 8);
        t.begin(0, ALPHA);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let r = t.drain();
        let totals = r.span_totals();
        assert!(totals[0].total_ns >= 2_000_000);
    }

    #[test]
    fn chrome_trace_round_trips_through_json() {
        let t = RingTracer::new(SPANS, HISTS, 2, 64);
        {
            let _s = span(&t, 0, ALPHA);
            t.instant(1, BETA);
            t.counter(1, GAMMA, 5);
        }
        let r = t.drain();
        let doc = chrome_trace_json(&r);
        let parsed = Json::parse(&doc.to_string()).expect("exporter emits valid JSON");
        let events = parsed
            .get("traceEvents")
            .and_then(|e| e.as_array())
            .expect("traceEvents array");
        // 2 thread_name metadata + 4 events
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        assert!(phases.contains(&"B") && phases.contains(&"E"));
        assert!(phases.contains(&"i") && phases.contains(&"C"));
        assert_eq!(phases.iter().filter(|&&p| p == "M").count(), 2);
        for e in events {
            assert!(e.get("pid").is_some() && e.get("tid").is_some());
        }
    }

    #[test]
    fn prometheus_text_exposes_all_families() {
        let t = RingTracer::new(SPANS, HISTS, 2, 64);
        {
            let _s = span(&t, 0, ALPHA);
        }
        t.duration_ns(0, VISIT, 1000);
        t.duration_ns(1, VISIT, 3);
        let r = t.drain();
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE farmer_span_seconds_total counter"));
        assert!(text.contains("farmer_span_seconds_total{span=\"alpha\"}"));
        assert!(text.contains("farmer_span_calls_total{span=\"alpha\"} 1"));
        assert!(text.contains("# TYPE farmer_visit_ns histogram"));
        assert!(text.contains("farmer_visit_ns_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("farmer_visit_ns_sum 1003"));
        assert!(text.contains("farmer_visit_ns_count 2"));
        assert!(text.contains("# TYPE farmer_scan_ns histogram"));
        assert!(text.contains("farmer_trace_dropped_events_total 0"));
        // cumulative bucket counts are monotone
        let counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("farmer_visit_ns_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn counters_and_gauges_merge_as_per_lane_sums() {
        const COUNTERS: &[&str] = &["reqs", "errs_total"];
        const GAUGES: &[&str] = &["inflight"];
        const REQS: CounterId = CounterId(0);
        const ERRS: CounterId = CounterId(1);
        const INFLIGHT: GaugeId = GaugeId(0);
        let t = RingTracer::with_metrics(SPANS, HISTS, COUNTERS, GAUGES, 3, 8);
        // Concurrent recording on distinct lanes, like the server's
        // acceptor (lane 0) and workers (lanes 1..).
        std::thread::scope(|s| {
            for lane in 0..3usize {
                let t = &t;
                s.spawn(move || {
                    for _ in 0..10 {
                        t.add(lane, REQS, 1);
                        t.gauge_add(lane, INFLIGHT, 1);
                    }
                    t.add(lane, ERRS, lane as u64);
                    // lower the gauge on a *different* lane than it was
                    // raised on: only the cross-lane sum is meaningful
                    t.gauge_add((lane + 1) % 3, INFLIGHT, -9);
                });
            }
        });
        let r = t.drain();
        assert_eq!(r.counter_names, vec!["reqs", "errs_total"]);
        assert_eq!(r.gauge_names, vec!["inflight"]);
        // merged == sum of lanes, for both counters and gauges
        for c in 0..COUNTERS.len() {
            let lane_sum: u64 = r.lane_counters.iter().map(|l| l[c]).sum();
            assert_eq!(r.counters[c], lane_sum);
        }
        let lane_sum: i64 = r.lane_gauges.iter().map(|l| l[0]).sum();
        assert_eq!(r.gauges[0], lane_sum);
        assert_eq!(r.counters, vec![30, 0 + 1 + 2]);
        assert_eq!(r.gauges, vec![30 - 27]);
        // out-of-range ids are ignored, not panics
        t.add(0, CounterId(99), 1);
        t.gauge_add(7, GaugeId(99), 1);
    }

    #[test]
    fn prometheus_text_renders_counter_and_gauge_families() {
        const COUNTERS: &[&str] = &["reqs", "sheds_total"];
        const GAUGES: &[&str] = &["inflight"];
        let t = RingTracer::with_metrics(SPANS, HISTS, COUNTERS, GAUGES, 2, 8);
        t.add(0, CounterId(0), 3);
        t.add(1, CounterId(0), 4);
        t.add(0, CounterId(1), 2);
        t.gauge_add(0, GaugeId(0), 5);
        t.gauge_add(1, GaugeId(0), -2);
        let text = prometheus_text(&t.drain());
        // counters get the _total suffix (never doubled) + HELP/TYPE
        assert!(text.contains("# TYPE farmer_reqs_total counter"));
        assert!(text.contains("# HELP farmer_reqs_total "));
        assert!(text.contains("\nfarmer_reqs_total 7\n"));
        assert!(text.contains("# TYPE farmer_sheds_total counter"));
        assert!(text.contains("\nfarmer_sheds_total 2\n"));
        assert!(!text.contains("sheds_total_total"));
        // gauges keep their name and net the per-lane deltas
        assert!(text.contains("# TYPE farmer_inflight gauge"));
        assert!(text.contains("\nfarmer_inflight 3\n"));
        // every family declares HELP and TYPE exactly once
        for family in ["farmer_reqs_total", "farmer_sheds_total", "farmer_inflight"] {
            let helps = text.matches(&format!("# HELP {family} ")).count();
            let types = text.matches(&format!("# TYPE {family} ")).count();
            assert_eq!((helps, types), (1, 1), "{family}");
        }
    }

    #[test]
    fn trace_stats_json_reports_spans_hists_drops() {
        let t = RingTracer::new(SPANS, HISTS, 2, 2);
        {
            let _s = span(&t, 0, ALPHA);
        }
        t.instant(0, BETA); // overflows the 2-slot lane
        t.duration_ns(0, VISIT, 10);
        let r = t.drain();
        let doc = trace_stats_json(&r);
        assert_eq!(doc.get("lanes").and_then(|l| l.as_u64()), Some(2));
        assert_eq!(doc.get("dropped_events").and_then(|d| d.as_u64()), Some(1));
        let spans = doc.get("spans").and_then(|s| s.as_array()).unwrap();
        assert_eq!(spans.len(), 1); // only alpha saw events
        assert_eq!(spans[0].get("name").and_then(|n| n.as_str()), Some("alpha"));
        let hists = doc.get("hists").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hists.len(), 2); // every histogram reported, even empty
        assert_eq!(hists[0].get("count").and_then(|c| c.as_u64()), Some(1));
        assert_eq!(hists[0].get("p50_ns").and_then(|p| p.as_u64()), Some(15));
        assert_eq!(hists[1].get("count").and_then(|c| c.as_u64()), Some(0));
        // valid JSON end to end
        Json::parse(&doc.to_string()).unwrap();
    }
}

//! LEB128 variable-length integer codec.
//!
//! The `.fgi` v2 artifact format stores every integer it can as an
//! unsigned LEB128 varint: 7 payload bits per byte, little-endian
//! groups, high bit set on every byte except the last. Values below
//! 128 cost one byte, which is the common case for class ids, delta
//! gaps, and run lengths.
//!
//! The decoder is strict: it rejects truncated input, encodings longer
//! than ten bytes, and ten-byte encodings whose final byte would
//! overflow 64 bits. It does *not* reject non-minimal encodings (e.g.
//! `0x80 0x00` for zero); writers here always emit minimal forms, and
//! the artifact checksum pins the exact bytes, so a non-minimal form
//! can only appear in input that already failed verification.

/// Maximum encoded length of a `u64`: `ceil(64 / 7)` bytes.
pub const MAX_LEN: usize = 10;

/// Appends the LEB128 encoding of `v` to `out` and returns the number
/// of bytes written (1..=10).
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        n += 1;
        if v == 0 {
            out.push(byte);
            return n;
        }
        out.push(byte | 0x80);
    }
}

/// Number of bytes [`write_u64`] would emit for `v`, without writing.
pub fn encoded_len(v: u64) -> usize {
    // 1 + floor(bits/7) for v > 0; one byte for zero.
    if v == 0 {
        1
    } else {
        (70 - v.leading_zeros() as usize) / 7
    }
}

/// Decodes a LEB128 `u64` from the front of `bytes`.
///
/// Returns the value and the number of bytes consumed, or `None` if
/// the input is truncated, longer than [`MAX_LEN`] bytes, or overflows
/// 64 bits.
pub fn read_u64(bytes: &[u8]) -> Option<(u64, usize)> {
    let mut v: u64 = 0;
    for (i, &b) in bytes.iter().enumerate().take(MAX_LEN) {
        let payload = (b & 0x7f) as u64;
        // The tenth byte may only contribute the single remaining bit.
        if i == MAX_LEN - 1 && payload > 1 {
            return None;
        }
        v |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: u64) {
        let mut buf = Vec::new();
        let n = write_u64(&mut buf, v);
        assert_eq!(n, buf.len());
        assert_eq!(n, encoded_len(v), "encoded_len disagrees for {v}");
        let (back, used) = read_u64(&buf).expect("decode");
        assert_eq!(back, v);
        assert_eq!(used, n);
    }

    #[test]
    fn round_trips_boundary_values() {
        for v in [
            0,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            round_trip(v);
        }
        // every power of two and its neighbors
        for s in 0..64 {
            let p = 1u64 << s;
            round_trip(p.wrapping_sub(1));
            round_trip(p);
            round_trip(p | 1);
        }
    }

    #[test]
    fn decode_consumes_prefix_only() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 300);
        buf.extend_from_slice(&[0xde, 0xad]);
        let (v, used) = read_u64(&buf).unwrap();
        assert_eq!(v, 300);
        assert_eq!(used, 2);
    }

    #[test]
    fn rejects_truncated_input() {
        assert_eq!(read_u64(&[]), None);
        assert_eq!(read_u64(&[0x80]), None);
        assert_eq!(read_u64(&[0xff, 0xff, 0x80]), None);
    }

    #[test]
    fn rejects_overlong_and_overflowing() {
        // 11 continuation bytes: longer than any valid u64 encoding.
        assert_eq!(read_u64(&[0x80; 11]), None);
        // 10th byte with payload 2 would need bit 64.
        let mut buf = vec![0xffu8; 9];
        buf.push(0x02);
        assert_eq!(read_u64(&buf), None);
        // u64::MAX itself is fine: 9 full bytes + final payload 1.
        let mut max = Vec::new();
        write_u64(&mut max, u64::MAX);
        assert_eq!(max.len(), 10);
        assert_eq!(*max.last().unwrap(), 0x01);
    }

    crate::check! {
        #![config(cases = 256)]

        #[test]
        fn property_round_trip(v in 0u64..u64::MAX) {
            let mut buf = Vec::new();
            let n = write_u64(&mut buf, v);
            let (back, used) = read_u64(&buf).expect("decode");
            crate::prop_assert_eq!((back, used), (v, n));
        }
    }
}

//! Regression tests for the shrinking machinery itself: planted
//! failures must shrink to the known-minimal counterexample, and the
//! runner's report must name it.

use farmer_support::check::{collection, shrink_tree, Config, Strategy};
use farmer_support::rng::{SeedableRng, StdRng};

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Extracts the panic message of a failing closure.
fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("closure must panic");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("non-string panic payload");
    }
}

#[test]
fn integer_failure_shrinks_to_boundary() {
    // property "x < 10" fails for any x >= 10; minimal counterexample
    // in 0..1000 is exactly 10
    let mut found = false;
    let mut r = rng(11);
    for _ in 0..200 {
        let tree = (0usize..1000).tree(&mut r);
        if tree.value >= 10 {
            let (minimal, steps) = shrink_tree(tree, |&v| v >= 10, 4096);
            assert_eq!(minimal.value, 10);
            assert!(steps > 0, "shrinking must have made progress");
            found = true;
            break;
        }
    }
    assert!(found, "0..1000 must generate a failing value quickly");
}

#[test]
fn vec_failure_shrinks_to_singleton() {
    // property "no element >= 50" — minimal counterexample is [50]
    let strat = collection::vec(0usize..1000, 0..40);
    let mut r = rng(12);
    loop {
        let tree = strat.tree(&mut r);
        if tree.value.iter().any(|&x| x >= 50) {
            let (minimal, _) = shrink_tree(tree, |v| v.iter().any(|&x| x >= 50), 8192);
            assert_eq!(minimal.value, vec![50]);
            return;
        }
    }
}

#[test]
fn shrinking_respects_minimum_length() {
    // with min length 3, the shrunk vec may not drop below 3 elements
    let strat = collection::vec(0usize..100, 3..20);
    let mut r = rng(13);
    let tree = strat.tree(&mut r);
    let (minimal, _) = shrink_tree(tree, |_| true, 2048);
    assert_eq!(
        minimal.value.len(),
        3,
        "always-failing property shrinks to the floor"
    );
    assert!(minimal.value.iter().all(|&x| x == 0));
}

#[test]
fn planted_failure_report_names_minimal_input() {
    let msg = panic_message(|| {
        farmer_support::check::run(
            "planted_shrink_regression",
            &Config::with_cases(256),
            collection::vec(0u32..1000, 0..32),
            |v| {
                // planted bug: "sums never reach 100"
                if v.iter().sum::<u32>() >= 100 {
                    return Err("sum reached 100".into());
                }
                Ok(())
            },
        );
    });
    assert!(msg.contains("planted_shrink_regression"), "{msg}");
    // greedy shrinking must reduce the witness to the single element
    // [100] — smaller sums pass, and two-element lists always shrink
    assert!(
        msg.contains("minimal input") && msg.contains("[100]"),
        "{msg}"
    );
    assert!(
        msg.contains("FARMER_CHECK_SEED"),
        "replay seed missing: {msg}"
    );
}

#[test]
fn shrunk_input_is_smaller_than_original() {
    // the report includes both the original and the minimal input;
    // verify shrinking strictly reduced the witness
    let msg = panic_message(|| {
        farmer_support::check::run(
            "shrinks_strictly",
            &Config::with_cases(256),
            collection::vec(0u32..1000, 8..32),
            |v| {
                assert!(v.len() < 8, "planted: every generated vec fails");
                Ok(())
            },
        );
    });
    // min_len is 8, so the minimal witness is the all-zero vec of len 8
    let expected = format!("{:?}", vec![0u32; 8]);
    assert!(msg.contains(&expected), "{msg}");
}

//! Mining diagnostic gene signatures from a (synthetic) cancer
//! microarray: the paper's motivating scenario end to end —
//! synthesize expression data, discretize it equal-depth, mine IRGs for
//! the tumor class, and inspect the highest-confidence signatures.
//!
//! ```text
//! cargo run --release --example cancer_signatures
//! ```

use farmer_suite::core::{Farmer, MiningParams};
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::synth::PaperDataset;

fn main() {
    // a Colon Tumor-shaped dataset: 62 samples, 2000 genes in the paper
    // (scaled to 5% of the columns here so the example runs in
    // milliseconds; pass 1.0 for the full shape)
    let analog = PaperDataset::ColonTumor;
    let matrix = analog.synth_config(0.05).generate();
    println!(
        "synthesized {} analog: {} samples x {} genes",
        analog.code(),
        matrix.n_rows(),
        matrix.n_genes()
    );

    // the paper's efficiency setup: equal-depth discretization, 10 buckets
    let data = Discretizer::EqualDepth { buckets: 10 }.discretize(&matrix);
    println!(
        "discretized: {} items, avg row length {:.0}\n",
        data.n_items(),
        data.avg_row_len()
    );

    // mine rule groups predicting class 1 ("negative" in Table 1):
    // at least 5 supporting tumor samples, 90% confidence, chi^2 >= 2.5.
    // (With 10-bucket equal-depth discretization each item covers ~10%
    // of the 62 samples, so rule supports top out near 6 — the paper's
    // efficiency grids use the same small absolute values.)
    let params = MiningParams::new(1).min_sup(5).min_conf(0.9).min_chi(2.5);
    let result = Farmer::new(params).mine(&data);
    println!(
        "{} interesting rule groups (search: {} nodes, {} compressed rows)\n",
        result.len(),
        result.stats.nodes_visited,
        result.stats.rows_compressed
    );

    // report the five strongest signatures
    for group in result.ranked().into_iter().take(5) {
        let genes: Vec<&str> = group.upper.iter().map(|i| data.item_name(i)).collect();
        println!(
            "signature of {} gene-bins, sup {}, conf {:.0}%, chi2 {:.1}, lift {:.2}",
            genes.len(),
            group.sup,
            group.confidence() * 100.0,
            group.chi_square(),
            group.lift(),
        );
        // the most general forms a biologist would read
        for low in group.lower.iter().take(3) {
            let names: Vec<&str> = low.iter().map(|i| data.item_name(i)).collect();
            println!("    e.g. {{{}}} -> tumor", names.join(", "));
        }
    }
}

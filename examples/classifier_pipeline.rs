//! The §4.2 classification pipeline on one dataset: stratified split,
//! entropy-MDL discretization learned on the training half, and the IRG
//! classifier vs CBA vs a linear SVM (Table 2 in miniature).
//!
//! ```text
//! cargo run --release --example classifier_pipeline
//! ```

use farmer_suite::classify::eval::{accuracy, Confusion};
use farmer_suite::classify::pipeline::DiscretizedSplit;
use farmer_suite::classify::{
    CbaClassifier, IrgClassifier, SvmClassifier, SvmConfig, TopKCommittee,
};
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::synth::PaperDataset;

fn main() {
    let analog = PaperDataset::Leukemia; // ALL-AML, 72 samples
    let matrix = analog.synth_config(0.05).generate();
    let (n_train, n_test) = analog.table2_split(); // 38 / 34 as in Table 2
    let (train_m, test_m) = matrix.stratified_split(n_train, 1);
    println!(
        "{} analog: {} train / {} test samples, {} genes",
        analog.code(),
        train_m.n_rows(),
        test_m.n_rows(),
        matrix.n_genes()
    );

    // discretization cuts come from the training half only — no leakage
    let split = DiscretizedSplit::fit(&train_m, &test_m, &Discretizer::EntropyMdl);
    println!(
        "entropy-MDL kept {} informative gene-bins\n",
        split.train.n_items()
    );

    // rule-based classifiers with the paper's thresholds
    let irg = IrgClassifier::train(&split.train, 0.7, 0.8);
    let cba = CbaClassifier::train(&split.train, 0.7, 0.8);
    println!(
        "IRG classifier: {} rules, default class {}",
        irg.rules().len(),
        split.train.class_name(irg.default_class())
    );

    let irg_pred = irg.predict_dataset(&split.test);
    let cba_pred = cba.predict_dataset(&split.test);
    let svm = SvmClassifier::train(&train_m, &SvmConfig::default());
    let svm_pred = svm.predict_matrix(&test_m);
    // the top-k committee (RCBT-style follow-up) as a fourth contender
    let committee = TopKCommittee::train(&split.train, 3, 5);
    let com_pred = committee.predict_dataset(&split.test);

    println!(
        "\n{} test samples ({n_test} per the paper's split):",
        split.test.n_rows()
    );
    for (name, pred) in [
        ("IRG", &irg_pred),
        ("CBA", &cba_pred),
        ("SVM", &svm_pred),
        ("TopK", &com_pred),
    ] {
        let acc = accuracy(split.test.labels(), pred);
        let conf = Confusion::new(split.test.labels(), pred, 2);
        println!(
            "  {name:<4} accuracy {:>6.2}%  (recall ALL {:.2}, recall AML {:.2})",
            acc * 100.0,
            conf.recall(1),
            conf.recall(0),
        );
    }
}

//! Four ways to mine the same closed patterns: CARPENTER (row
//! enumeration), CHARM (vertical tidsets), CLOSET+ (FP-trees), and
//! Apriori + closure filtering — demonstrating that they agree exactly
//! and how differently they scale on a microarray-shaped input.
//!
//! ```text
//! cargo run --release --example closed_pattern_miners
//! ```

use farmer_suite::baselines::apriori::apriori;
use farmer_suite::baselines::charm::charm;
use farmer_suite::baselines::closet::closet;
use farmer_suite::baselines::Budgeted;
use farmer_suite::core::carpenter::carpenter;
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::synth::SynthConfig;
use std::collections::HashSet;
use std::time::Instant;

fn main() {
    // a small microarray-shaped table: 40 samples, 300 genes
    let matrix = SynthConfig {
        n_rows: 40,
        n_genes: 300,
        n_class1: 20,
        n_signature: 100,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    let data = Discretizer::EqualDepth { buckets: 8 }.discretize(&matrix);
    let min_sup = 5;
    println!(
        "dataset: {} rows x {} items, min_sup {min_sup}\n",
        data.n_rows(),
        data.n_items()
    );

    let t = Instant::now();
    let carp = carpenter(&data, min_sup);
    println!(
        "CARPENTER  (row enumeration): {:>5} closed patterns in {:>9.2?} ({} nodes)",
        carp.patterns.len(),
        t.elapsed(),
        carp.stats.nodes_visited
    );

    let t = Instant::now();
    let ch = charm(&data, min_sup);
    println!(
        "CHARM      (vertical tidsets): {:>4} closed patterns in {:>9.2?} ({} pairs)",
        ch.closed.len(),
        t.elapsed(),
        ch.stats.pairs_examined
    );

    let t = Instant::now();
    let cl = closet(&data, min_sup);
    println!(
        "CLOSET+    (FP-trees):         {:>4} closed patterns in {:>9.2?} ({} trees)",
        cl.closed.len(),
        t.elapsed(),
        cl.stats.trees_built
    );

    let t = Instant::now();
    let ap = apriori(&data, min_sup, Some(100_000_000));
    match &ap {
        Budgeted::Done(sets) => {
            // closed = frequent sets no proper superset of which has the
            // same support
            let closed = sets
                .iter()
                .filter(|s| {
                    !sets.iter().any(|t| {
                        t.support == s.support
                            && t.items.len() > s.items.len()
                            && s.items.is_subset(&t.items)
                    })
                })
                .count();
            println!(
                "Apriori    (levelwise):        {closed:>4} closed of {} frequent in {:>9.2?}",
                sets.len(),
                t.elapsed()
            );
        }
        Budgeted::BudgetExhausted { nodes } => {
            println!("Apriori    (levelwise):        gave up after {nodes} candidates — the combinatorial explosion the paper describes");
        }
    }

    // cross-check: the three closed-set miners agree item for item
    let canon = |items: &rowset::IdList| items.as_slice().to_vec();
    let a: HashSet<Vec<u32>> = carp.patterns.iter().map(|p| canon(&p.items)).collect();
    let b: HashSet<Vec<u32>> = ch.closed.iter().map(|c| canon(&c.items)).collect();
    let c: HashSet<Vec<u32>> = cl.closed.iter().map(|c| canon(&c.items)).collect();
    assert_eq!(a, b, "CARPENTER and CHARM disagree");
    assert_eq!(b, c, "CHARM and CLOSET+ disagree");
    println!("\nall closed-set miners agree on {} patterns ✓", a.len());
}

//! Quickstart: mine interesting rule groups from the paper's running
//! example (Figure 1) and print them with their lower bounds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use farmer_suite::core::{Farmer, MiningParams};
use farmer_suite::dataset::paper_example;

fn main() {
    // Figure 1(a): five rows over items a..t, three labeled C (class 0),
    // two labeled ¬C (class 1)
    let data = paper_example();
    println!(
        "dataset: {} rows, {} items, {} class-C rows\n",
        data.n_rows(),
        data.n_items(),
        data.class_count(0)
    );

    // find every interesting rule group predicting class C with
    // support >= 1 (lower bounds included)
    let params = MiningParams::new(0).min_sup(1).min_conf(0.0);
    let result = Farmer::new(params).mine(&data);

    println!("{} interesting rule groups:\n", result.len());
    for group in result.ranked() {
        println!("  {}", group.display(&data));
        let lows: Vec<String> = group
            .lower
            .iter()
            .map(|l| {
                l.iter()
                    .map(|i| data.item_name(i).to_string())
                    .collect::<Vec<_>>()
                    .join("")
            })
            .collect();
        println!("    lower bounds: {{{}}}", lows.join(", "));
        println!(
            "    covers rows {:?} | search saw {} nodes",
            group.support_set.to_vec(),
            result.stats.nodes_visited
        );
    }

    // one concrete membership query: is "eh -> C" a member of some group?
    let e = data.item_by_name("e").expect("item e");
    let h = data.item_by_name("h").expect("item h");
    let eh = rowset::IdList::from_iter([e, h]);
    let holder = result.groups.iter().find(|g| g.contains_rule(&eh));
    match holder {
        Some(g) => println!(
            "\nrule eh -> C belongs to the group of {}",
            g.display(&data)
        ),
        None => println!("\nrule eh -> C belongs to no *interesting* group"),
    }
}

//! The drop-in-your-own-data workflow, end to end on files: write an
//! expression CSV (with missing values, as real exports have), load it
//! back, impute, discretize with two supervised methods, mine, and
//! compare what each discretization exposes.
//!
//! ```text
//! cargo run --release --example real_data_workflow
//! ```

use farmer_suite::core::{Farmer, GroupIndex, MiningParams};
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::io::{load_matrix_csv, save_matrix_csv};
use farmer_suite::dataset::synth::SynthConfig;
use farmer_support::rng::{Rng, SeedableRng, StdRng};

fn main() {
    let dir = std::env::temp_dir().join("farmer-real-data-workflow");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("cohort.csv");

    // pretend this came from a lab: synthesize, then knock out 2% of the
    // values the way real exports arrive with NAs
    let matrix = SynthConfig {
        n_rows: 50,
        n_genes: 300,
        n_class1: 24,
        n_signature: 90,
        shift: 1.4,
        clusters_per_class: 2,
        cluster_spread: 1.6,
        cluster_noise: 0.4,
        ..Default::default()
    }
    .generate();
    save_matrix_csv(&matrix, &csv).expect("write csv");
    // punch NA holes directly in the file? easier to re-load and damage
    let mut damaged = load_matrix_csv(&csv).expect("load csv");
    {
        let mut rng = StdRng::seed_from_u64(9);
        let mut values: Vec<f64> = (0..damaged.n_rows())
            .flat_map(|r| damaged.row(r).to_vec())
            .collect();
        for v in values.iter_mut() {
            if rng.gen_bool(0.02) {
                *v = f64::NAN;
            }
        }
        damaged = farmer_suite::dataset::ExpressionMatrix::new(
            damaged.n_rows(),
            damaged.n_genes(),
            values,
            damaged.labels().to_vec(),
            2,
        );
    }
    println!(
        "cohort: {} samples x {} genes, {} missing values",
        damaged.n_rows(),
        damaged.n_genes(),
        damaged.n_missing()
    );

    // impute, then compare the two supervised discretizations
    let clean = damaged.impute_gene_means();
    assert!(!clean.has_missing());
    for (name, disc) in [
        ("entropy-MDL", Discretizer::EntropyMdl),
        (
            "ChiMerge(4.61)",
            Discretizer::ChiMerge {
                threshold: 4.61,
                max_intervals: 6,
            },
        ),
    ] {
        let data = disc.discretize(&clean);
        let params = MiningParams::new(1).min_sup(8).min_conf(0.9);
        let result = Farmer::new(params).mine(&data);
        println!(
            "\n{name}: {} informative items -> {} IRGs",
            data.n_items(),
            result.len()
        );
        let n_items = data.n_items();
        let index = GroupIndex::new(result.groups, n_items);
        if let Some(best) = index
            .groups()
            .iter()
            .max_by(|a, b| a.confidence().partial_cmp(&b.confidence()).unwrap())
        {
            println!("  strongest group: {}", best.display(&data));
            // which other groups mention its first gene-bin?
            if let Some(first_item) = best.upper.iter().next() {
                println!(
                    "  groups mentioning {}: {}",
                    data.item_name(first_item),
                    index.mentioning_item(first_item).count()
                );
            }
        }
        // triage one sample through the index
        let sample = data.row(0).clone();
        match index.best_firing_on(&sample) {
            Some(g) => println!(
                "  sample 0 [{}] fires {} (conf {:.0}%)",
                data.class_name(data.label(0)),
                g.display(&data),
                g.confidence() * 100.0
            ),
            None => println!("  sample 0 fires no group"),
        }
    }
}

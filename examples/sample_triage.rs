//! Per-sample triage with top-k covering rule groups: instead of one
//! global confidence cutoff, ask for each patient sample "which are the
//! k strongest rules that apply to *this* sample?" — the follow-up
//! direction of the FARMER authors (RCBT, SIGMOD 2005).
//!
//! ```text
//! cargo run --release --example sample_triage
//! ```

use farmer_suite::core::topk::mine_top_k;
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::synth::PaperDataset;

fn main() {
    let analog = PaperDataset::ColonTumor;
    let matrix = analog.synth_config(0.05).generate();
    let data = Discretizer::EqualDepth { buckets: 10 }.discretize(&matrix);
    println!(
        "{} analog: {} samples x {} items\n",
        analog.code(),
        data.n_rows(),
        data.n_items()
    );

    // the 3 best tumor-predicting rule groups covering each sample,
    // among groups with at least 4 supporting tumor samples
    let k = 3;
    let result = mine_top_k(&data, 1, k, 4);
    println!(
        "top-{k} covering rule groups per sample ({} search nodes, {} floor prunes)\n",
        result.nodes_visited, result.pruned_floor
    );

    let mut uncovered = 0usize;
    let mut misleading = 0usize;
    for (r, groups) in result.per_row.iter().enumerate().take(12) {
        let label = data.class_name(data.label(r as u32));
        match groups.first() {
            None => {
                println!("sample {r:>2} [{label:>8}]  — no covering group");
                uncovered += 1;
            }
            Some(best) => {
                println!(
                    "sample {r:>2} [{label:>8}]  best: {} items, sup {}, conf {:.0}%  (of {} groups)",
                    best.upper.len(),
                    best.sup,
                    best.confidence() * 100.0,
                    groups.len()
                );
                // a high-confidence tumor rule on a normal sample is the
                // interesting (misleading) case a global cutoff hides
                if data.label(r as u32) == 0 && best.confidence() > 0.8 {
                    misleading += 1;
                }
            }
        }
    }
    println!("\n(first 12 samples shown)");
    let covered = result.per_row.iter().filter(|g| !g.is_empty()).count();
    println!(
        "coverage: {covered}/{} samples have at least one group; {uncovered} of the first 12 uncovered; {misleading} normal samples matched a strong tumor rule",
        data.n_rows()
    );
}

#!/usr/bin/env bash
# Full offline benchmark pass: every criterion-lite suite plus the PR
# perf-trajectory report (committed at the repo root as BENCH_PR<k>.json).
#
#   FARMER_BENCH_SAMPLES=<n>  repetitions per measurement (default 3)
#   scripts/bench.sh --smoke  1-sample quick pass (CI-friendly)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--smoke" ]]; then
  export FARMER_BENCH_SAMPLES=1
fi

for suite in substrates engines_and_pruning farmer_sweeps baseline_comparison; do
  echo "==> cargo bench --bench $suite"
  cargo bench --offline -p farmer-bench --bench "$suite"
done

echo "==> perf trajectory (BENCH_PR3.json)"
cargo run -q --offline --release -p farmer-bench --bin pr3_trajectory
cargo run -q --offline --release -p farmer-bench --bin pr3_trajectory -- --check BENCH_PR3.json

echo "==> tracing overhead (BENCH_PR4.json)"
cargo run -q --offline --release -p farmer-bench --bin pr4_overhead
cargo run -q --offline --release -p farmer-bench --bin pr4_overhead -- --check BENCH_PR4.json

echo "==> scheduler guard (BENCH_PR6.json)"
cargo run -q --offline --release -p farmer-bench --bin pr6_scheduler
cargo run -q --offline --release -p farmer-bench --bin pr6_scheduler -- --check BENCH_PR6.json

echo "==> serving guard (BENCH_PR7.json)"
cargo run -q --offline --release -p farmer-bench --bin pr7_serving
cargo run -q --offline --release -p farmer-bench --bin pr7_serving -- --check BENCH_PR7.json

echo "==> observability guard (BENCH_PR9.json)"
cargo run -q --offline --release -p farmer-bench --bin pr9_observability
cargo run -q --offline --release -p farmer-bench --bin pr9_observability -- --check BENCH_PR9.json

echo "==> pipeline guard (BENCH_PR10.json)"
cargo run -q --offline --release -p farmer-bench --bin pr10_pipeline
cargo run -q --offline --release -p farmer-bench --bin pr10_pipeline -- --check BENCH_PR10.json

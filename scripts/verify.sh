#!/usr/bin/env bash
# Full offline verification: build, test, format check, bench smoke.
# The workspace is hermetic (no external crates), so everything below
# runs with --offline on a machine that has never touched crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline --workspace"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> session layer (budgets, deadlines, cancellation, observers)"
cargo test -q --offline -p farmer-core --test session
cargo test -q --offline -p farmer-baselines adapters

echo "==> allocation guard (hot path must not allocate once warm; release)"
cargo test -q --offline --release -p farmer-core --test alloc_guard

echo "==> parallel determinism matrix (threads x engine x memo, byte-pinned)"
cargo test -q --offline -p farmer-core --test parallel_matrix

echo "==> memo hammer (8 threads on a 16-slot table vs sequential oracle)"
cargo test -q --offline --test stress memo_hammer

echo "==> CLI --stats-json smoke (output must parse with support::json)"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
./target/release/farmer synth --preset custom --rows 20 --genes 50 --out "$tmp/m.csv"
./target/release/farmer discretize --in "$tmp/m.csv" --method equal-depth:4 --out "$tmp/m.txt"
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 --stats-json > "$tmp/stats.json"
grep -q '"nodes_visited"' "$tmp/stats.json"
grep -q '"stop": "completed"' "$tmp/stats.json"
# a budgeted run must still exit 0 and report the truncation
./target/release/farmer mine --in "$tmp/m.txt" --node-budget 5 --stats-json > "$tmp/trunc.json"
grep -q '"stop": "budget"' "$tmp/trunc.json"
# parallel run reports the scheduler block (per-worker nodes, steals)
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 --threads 2 --stats-json > "$tmp/par.json"
grep -q '"scheduler"' "$tmp/par.json"
grep -q '"peak_arena_depth"' "$tmp/par.json"
# memo-enabled run reports the memo block with live counters
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 --threads 2 \
  --memo-capacity 4096 --stats-json > "$tmp/memo.json"
grep -q '"memo"' "$tmp/memo.json"
grep -q '"hits"' "$tmp/memo.json"

echo "==> trace smoke (--trace-out / --metrics-out / stats trace block)"
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 --threads 2 \
  --trace-out "$tmp/trace.json" --metrics-out "$tmp/metrics.prom" \
  --stats-json > "$tmp/traced.json"
# the trace export must be loadable Chrome trace-event JSON
cargo run -q --offline --release -p farmer-bench \
  --bin pr4_overhead -- --check-trace "$tmp/trace.json"
# the Prometheus text must expose every expected metric family
for family in farmer_span_seconds_total farmer_span_calls_total \
  farmer_node_visit_ns_bucket farmer_fused_scan_ns_count \
  farmer_lower_bound_ns_sum farmer_trace_dropped_events_total; do
  grep -q "$family" "$tmp/metrics.prom"
done
# the stats report folds the trace block in (and the pruned parity key)
grep -q '"trace"' "$tmp/traced.json"
grep -q '"dropped_events"' "$tmp/traced.json"
grep -q '"confidence_floor"' "$tmp/traced.json"

echo "==> store & serve smoke (mine --save-irgs -> serve -> client -> clean exit)"
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 \
  --save-irgs "$tmp/m.fgi" > "$tmp/mine_save.txt"
grep -q 'rule groups to' "$tmp/mine_save.txt"
# offline query against the saved artifact answers without a server
./target/release/farmer query "$tmp/m.fgi" --items 0,1 --limit 3 > "$tmp/query.txt"
grep -q 'classified as' "$tmp/query.txt"
# serve on an ephemeral port; --idle-exit-ms lets it exit 0 by itself
./target/release/farmer serve "$tmp/m.fgi" --workers 2 --idle-exit-ms 2000 \
  --log-out "$tmp/access.jsonl" --slow-ms 0 > "$tmp/serve.log" &
serve_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's|.*at http://||p' "$tmp/serve.log" | head -n1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ]
client=./target/release/fgi-client
# versioned API plus the deprecated unversioned aliases
"$client" "$addr" /v1/healthz --expect 200 | grep -q '"status":"ok"'
"$client" "$addr" "/v1/classify?items=0,1" --expect 200 | grep -q '"class"'
"$client" "$addr" /v1/classify --batch "0,1;2" --expect 200 | grep -q '"predictions"'
"$client" "$addr" "/v1/query?items=0,1&limit=2" --expect 200 | grep -q '"groups"'
"$client" "$addr" /v1/nope --expect 404 | grep -q '"code":"not_found"'
"$client" "$addr" /healthz --expect 200 | grep -q '"status":"ok"'
"$client" "$addr" "/classify?items=0,1" --expect 200 | grep -q '"class"'
"$client" "$addr" "/query?items=0,1&limit=2" --expect 200 | grep -q '"groups"'
"$client" "$addr" /nope --expect 404 > /dev/null
# build + artifact versions ride along in the health report
"$client" "$addr" /v1/healthz --expect 200 | grep -q '"artifact_version":2'
# both admin endpoints are admin-disabled when no token was configured
"$client" "$addr" /v1/admin/reload --post --expect 403 | grep -q 'admin_disabled'
"$client" "$addr" /v1/admin/stats --expect 403 | grep -q 'admin_disabled'
# every response carries a request id, and the access log echoes it
rid="$("$client" "$addr" /v1/healthz --print-header X-Request-Id)"
[ -n "$rid" ]
grep -q "\"id\":\"$rid\"" "$tmp/access.jsonl"
"$client" "$addr" /metrics --expect 200 > "$tmp/serve_metrics.prom"
for family in farmer_serve_request_ns farmer_serve_classify_ns \
  farmer_serve_healthz_ns farmer_serve_requests_total \
  farmer_serve_errors_total farmer_serve_shed_total farmer_serve_inflight; do
  grep -q "$family" "$tmp/serve_metrics.prom"
done
# two frames of the live dashboard render without a token
"$client" watch "$addr" --frames 2 --interval-ms 100 > "$tmp/watch.txt"
grep -q 'req/s' "$tmp/watch.txt"
wait "$serve_pid"
grep -q 'shut down cleanly' "$tmp/serve.log"

echo "==> hot-reload smoke (authenticated reload + SIGHUP, old artifact keeps serving)"
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 4 \
  --save-irgs "$tmp/hot.fgi" > /dev/null
./target/release/farmer serve "$tmp/hot.fgi" --workers 2 --admin-token sekrit \
  --idle-exit-ms 4000 > "$tmp/hot.log" &
hot_pid=$!
hot_addr=""
for _ in $(seq 1 100); do
  hot_addr="$(sed -n 's|.*at http://||p' "$tmp/hot.log" | head -n1)"
  [ -n "$hot_addr" ] && break
  sleep 0.1
done
[ -n "$hot_addr" ]
groups_before="$("$client" "$hot_addr" /v1/healthz --expect 200 \
  | sed -n 's/.*"groups":\([0-9]*\).*/\1/p')"
# remine with a lower support floor: strictly more groups land on disk
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 2 \
  --save-irgs "$tmp/hot.fgi" > /dev/null
# unauthenticated reload is refused, authenticated one swaps
"$client" "$hot_addr" /v1/admin/reload --post --expect 401 > /dev/null
"$client" "$hot_addr" /v1/admin/reload --post --token sekrit --expect 200 \
  | grep -q '"reloaded":true'
"$client" "$hot_addr" /v1/healthz --expect 200 | grep -q '"epoch":1'
groups_after="$("$client" "$hot_addr" /v1/healthz --expect 200 \
  | sed -n 's/.*"groups":\([0-9]*\).*/\1/p')"
[ "$groups_after" -gt "$groups_before" ]
# /v1/admin/stats shares the reload auth and has seen that reload
"$client" "$hot_addr" /v1/admin/stats --expect 401 | grep -q 'unauthorized'
"$client" "$hot_addr" /v1/admin/stats --token sekrit --expect 200 \
  > "$tmp/stats.json"
grep -q '"uptime_ns"' "$tmp/stats.json"
grep -q '"serve_reloads":1' "$tmp/stats.json"
# SIGHUP hot-reloads from disk too
kill -HUP "$hot_pid"
for _ in $(seq 1 100); do
  grep -q 'SIGHUP: reloaded' "$tmp/hot.log" && break
  sleep 0.1
done
"$client" "$hot_addr" /v1/healthz --expect 200 | grep -q '"epoch":2'
wait "$hot_pid"
grep -q 'shut down cleanly' "$tmp/hot.log"

echo "==> streaming pipeline smoke (ingest -> remine -> hot publish)"
./target/release/farmer mine --in "$tmp/m.txt" --min-sup 3 \
  --save-irgs "$tmp/live.fgi" > /dev/null
./target/release/farmer serve "$tmp/live.fgi" --workers 2 \
  --watch --base "$tmp/m.txt" --journal "$tmp/live.fgd" \
  --remine-debounce-ms 100 --min-sup 3 --class 1 \
  --admin-token sekrit --idle-exit-ms 4000 > "$tmp/live.log" &
live_pid=$!
live_addr=""
for _ in $(seq 1 100); do
  live_addr="$(sed -n 's|.*at http://||p' "$tmp/live.log" | head -n1)"
  [ -n "$live_addr" ] && break
  sleep 0.1
done
[ -n "$live_addr" ]
"$client" "$live_addr" /v1/healthz --expect 200 | grep -q '"epoch":0'
# journal-side ingest from a separate process; the watch daemon picks
# it up, remines, publishes atomically, and hot-swaps the served index
./target/release/farmer ingest --journal "$tmp/live.fgd" --base "$tmp/m.txt" \
  --items 0,1,2 --label 1 | grep -q 'appended 1 row'
for _ in $(seq 1 100); do
  "$client" "$live_addr" /v1/healthz --expect 200 | grep -q '"epoch":1' && break
  sleep 0.1
done
"$client" "$live_addr" /v1/healthz --expect 200 | grep -q '"epoch":1'
# the republished artifact still answers, and the admin stats carry
# the pipeline block (journal rows, generation, publish counters)
"$client" "$live_addr" "/v1/classify?items=0,1" --expect 200 | grep -q '"class"'
"$client" "$live_addr" /v1/admin/stats --token sekrit --expect 200 \
  > "$tmp/live_stats.json"
grep -q '"pipeline"' "$tmp/live_stats.json"
grep -q '"generation":1' "$tmp/live_stats.json"
wait "$live_pid"
grep -q 'shut down cleanly' "$tmp/live.log"

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (1 sample, substrates + serving)"
FARMER_BENCH_SAMPLES=1 cargo bench --offline -p farmer-bench --bench substrates
FARMER_BENCH_SAMPLES=1 cargo bench --offline -p farmer-bench --bench serving

echo "==> perf trajectory smoke (1 sample) + schema check"
FARMER_BENCH_SAMPLES=1 cargo run -q --offline --release -p farmer-bench \
  --bin pr3_trajectory -- --out "$tmp/BENCH_PR3.json"
cargo run -q --offline --release -p farmer-bench \
  --bin pr3_trajectory -- --check "$tmp/BENCH_PR3.json"
# the committed trajectory point must also stay schema-valid
cargo run -q --offline --release -p farmer-bench \
  --bin pr3_trajectory -- --check BENCH_PR3.json

echo "==> tracing overhead report: committed BENCH_PR4.json honors its bound"
cargo run -q --offline --release -p farmer-bench \
  --bin pr4_overhead -- --check BENCH_PR4.json

echo "==> scheduler guard smoke (1 sample) + committed BENCH_PR6.json bounds"
FARMER_BENCH_SAMPLES=1 cargo run -q --offline --release -p farmer-bench \
  --bin pr6_scheduler -- --out "$tmp/BENCH_PR6.json"
cargo run -q --offline --release -p farmer-bench \
  --bin pr6_scheduler -- --check "$tmp/BENCH_PR6.json"
# the committed scheduler report must also honor its recorded bounds
cargo run -q --offline --release -p farmer-bench \
  --bin pr6_scheduler -- --check BENCH_PR6.json

echo "==> serving guard smoke (1 sample) + committed BENCH_PR7.json bounds"
FARMER_BENCH_SAMPLES=1 cargo run -q --offline --release -p farmer-bench \
  --bin pr7_serving -- --out "$tmp/BENCH_PR7.json"
cargo run -q --offline --release -p farmer-bench \
  --bin pr7_serving -- --check "$tmp/BENCH_PR7.json"
# the committed serving report must also honor the compaction bound
cargo run -q --offline --release -p farmer-bench \
  --bin pr7_serving -- --check BENCH_PR7.json

echo "==> observability guard smoke (1 sample) + committed BENCH_PR9.json bounds"
FARMER_BENCH_SAMPLES=1 cargo run -q --offline --release -p farmer-bench \
  --bin pr9_observability -- --out "$tmp/BENCH_PR9.json"
cargo run -q --offline --release -p farmer-bench \
  --bin pr9_observability -- --check "$tmp/BENCH_PR9.json"
# the committed report must keep the disabled path within 3% of PR 7
cargo run -q --offline --release -p farmer-bench \
  --bin pr9_observability -- --check BENCH_PR9.json

echo "==> pipeline guard smoke (1 sample) + committed BENCH_PR10.json bounds"
FARMER_BENCH_SAMPLES=1 cargo run -q --offline --release -p farmer-bench \
  --bin pr10_pipeline -- --out "$tmp/BENCH_PR10.json"
cargo run -q --offline --release -p farmer-bench \
  --bin pr10_pipeline -- --check "$tmp/BENCH_PR10.json"
# the committed pipeline report must honor the speedup bound too
cargo run -q --offline --release -p farmer-bench \
  --bin pr10_pipeline -- --check BENCH_PR10.json

echo "==> verify OK"

#!/usr/bin/env bash
# Full offline verification: build, test, format check, bench smoke.
# The workspace is hermetic (no external crates), so everything below
# runs with --offline on a machine that has never touched crates.io.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> bench smoke (1 sample, substrates)"
FARMER_BENCH_SAMPLES=1 cargo bench --offline -p farmer-bench --bench substrates

echo "==> verify OK"

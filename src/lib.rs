//! # farmer-suite
//!
//! Umbrella crate of the FARMER reproduction: re-exports the public API
//! of every member crate so the examples and integration tests have one
//! coherent namespace. Library users should usually depend on the
//! individual crates instead.
//!
//! * [`dataset`] — data model, discretization, synthesis, IO
//!   (`farmer-dataset`);
//! * [`core`] — the FARMER miner, CARPENTER, measures, MineLB
//!   (`farmer-core`);
//! * [`baselines`] — Apriori, CHARM, CLOSET+, ColumnE
//!   (`farmer-baselines`);
//! * [`classify`] — IRG/CBA/SVM classifiers (`farmer-classify`);
//! * [`rowset`] — the bitset/id-list substrate.

#![forbid(unsafe_code)]

pub use farmer_baselines as baselines;
pub use farmer_classify as classify;
pub use farmer_core as core;
pub use farmer_dataset as dataset;
pub use rowset;

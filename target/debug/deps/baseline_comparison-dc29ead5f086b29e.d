/root/repo/target/debug/deps/baseline_comparison-dc29ead5f086b29e.d: crates/bench/benches/baseline_comparison.rs

/root/repo/target/debug/deps/baseline_comparison-dc29ead5f086b29e: crates/bench/benches/baseline_comparison.rs

crates/bench/benches/baseline_comparison.rs:

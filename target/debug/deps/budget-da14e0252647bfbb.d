/root/repo/target/debug/deps/budget-da14e0252647bfbb.d: crates/core/tests/budget.rs

/root/repo/target/debug/deps/budget-da14e0252647bfbb: crates/core/tests/budget.rs

crates/core/tests/budget.rs:

/root/repo/target/debug/deps/end_to_end-33ada5fa486a4d3e.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-33ada5fa486a4d3e: tests/end_to_end.rs

tests/end_to_end.rs:

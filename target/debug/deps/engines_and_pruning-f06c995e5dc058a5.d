/root/repo/target/debug/deps/engines_and_pruning-f06c995e5dc058a5.d: crates/bench/benches/engines_and_pruning.rs

/root/repo/target/debug/deps/engines_and_pruning-f06c995e5dc058a5: crates/bench/benches/engines_and_pruning.rs

crates/bench/benches/engines_and_pruning.rs:

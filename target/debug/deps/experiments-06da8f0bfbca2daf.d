/root/repo/target/debug/deps/experiments-06da8f0bfbca2daf.d: crates/bench/src/bin/experiments/main.rs crates/bench/src/bin/experiments/ablation.rs crates/bench/src/bin/experiments/cobbler_exp.rs crates/bench/src/bin/experiments/fig10.rs crates/bench/src/bin/experiments/fig11.rs crates/bench/src/bin/experiments/scale.rs crates/bench/src/bin/experiments/table1.rs crates/bench/src/bin/experiments/table2.rs

/root/repo/target/debug/deps/experiments-06da8f0bfbca2daf: crates/bench/src/bin/experiments/main.rs crates/bench/src/bin/experiments/ablation.rs crates/bench/src/bin/experiments/cobbler_exp.rs crates/bench/src/bin/experiments/fig10.rs crates/bench/src/bin/experiments/fig11.rs crates/bench/src/bin/experiments/scale.rs crates/bench/src/bin/experiments/table1.rs crates/bench/src/bin/experiments/table2.rs

crates/bench/src/bin/experiments/main.rs:
crates/bench/src/bin/experiments/ablation.rs:
crates/bench/src/bin/experiments/cobbler_exp.rs:
crates/bench/src/bin/experiments/fig10.rs:
crates/bench/src/bin/experiments/fig11.rs:
crates/bench/src/bin/experiments/scale.rs:
crates/bench/src/bin/experiments/table1.rs:
crates/bench/src/bin/experiments/table2.rs:

/root/repo/target/debug/deps/farmer-9b69d0680b27b6a6.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/farmer-9b69d0680b27b6a6: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/debug/deps/farmer-ed609c3e3032d14a.d: crates/cli/src/main.rs

/root/repo/target/debug/deps/farmer-ed609c3e3032d14a: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/debug/deps/farmer_baselines-961d5b913db8506c.d: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

/root/repo/target/debug/deps/libfarmer_baselines-961d5b913db8506c.rlib: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

/root/repo/target/debug/deps/libfarmer_baselines-961d5b913db8506c.rmeta: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/apriori.rs:
crates/baselines/src/charm.rs:
crates/baselines/src/closet.rs:
crates/baselines/src/column_e.rs:
crates/baselines/src/fptree.rs:

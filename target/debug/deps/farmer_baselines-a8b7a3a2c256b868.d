/root/repo/target/debug/deps/farmer_baselines-a8b7a3a2c256b868.d: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

/root/repo/target/debug/deps/farmer_baselines-a8b7a3a2c256b868: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/apriori.rs:
crates/baselines/src/charm.rs:
crates/baselines/src/closet.rs:
crates/baselines/src/column_e.rs:
crates/baselines/src/fptree.rs:

/root/repo/target/debug/deps/farmer_bench-6741bf6ca5380956.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libfarmer_bench-6741bf6ca5380956.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/libfarmer_bench-6741bf6ca5380956.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

/root/repo/target/debug/deps/farmer_bench-89eea32daf6fa331.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/debug/deps/farmer_bench-89eea32daf6fa331: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

/root/repo/target/debug/deps/farmer_classify-10ed28cd49723b2c.d: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/debug/deps/farmer_classify-10ed28cd49723b2c: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

crates/classify/src/lib.rs:
crates/classify/src/committee.rs:
crates/classify/src/cv.rs:
crates/classify/src/eval.rs:
crates/classify/src/pipeline.rs:
crates/classify/src/rules.rs:
crates/classify/src/svm.rs:

/root/repo/target/debug/deps/farmer_classify-3e5d5f09bac18254.d: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/debug/deps/libfarmer_classify-3e5d5f09bac18254.rlib: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/debug/deps/libfarmer_classify-3e5d5f09bac18254.rmeta: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

crates/classify/src/lib.rs:
crates/classify/src/committee.rs:
crates/classify/src/cv.rs:
crates/classify/src/eval.rs:
crates/classify/src/pipeline.rs:
crates/classify/src/rules.rs:
crates/classify/src/svm.rs:

/root/repo/target/debug/deps/farmer_cli-138322618d1f587c.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

/root/repo/target/debug/deps/libfarmer_cli-138322618d1f587c.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

/root/repo/target/debug/deps/libfarmer_cli-138322618d1f587c.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/output.rs:

/root/repo/target/debug/deps/farmer_cli-8d273fa2e0f7bae7.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

/root/repo/target/debug/deps/farmer_cli-8d273fa2e0f7bae7: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/output.rs:

/root/repo/target/debug/deps/farmer_core-f54ffa2d20c83d8e.d: crates/core/src/lib.rs crates/core/src/carpenter.rs crates/core/src/cobbler.rs crates/core/src/cond/mod.rs crates/core/src/cond/bitset_engine.rs crates/core/src/cond/pointer_engine.rs crates/core/src/measures.rs crates/core/src/minelb.rs crates/core/src/naive.rs crates/core/src/topk.rs crates/core/src/index.rs crates/core/src/miner.rs crates/core/src/params.rs crates/core/src/rule.rs

/root/repo/target/debug/deps/farmer_core-f54ffa2d20c83d8e: crates/core/src/lib.rs crates/core/src/carpenter.rs crates/core/src/cobbler.rs crates/core/src/cond/mod.rs crates/core/src/cond/bitset_engine.rs crates/core/src/cond/pointer_engine.rs crates/core/src/measures.rs crates/core/src/minelb.rs crates/core/src/naive.rs crates/core/src/topk.rs crates/core/src/index.rs crates/core/src/miner.rs crates/core/src/params.rs crates/core/src/rule.rs

crates/core/src/lib.rs:
crates/core/src/carpenter.rs:
crates/core/src/cobbler.rs:
crates/core/src/cond/mod.rs:
crates/core/src/cond/bitset_engine.rs:
crates/core/src/cond/pointer_engine.rs:
crates/core/src/measures.rs:
crates/core/src/minelb.rs:
crates/core/src/naive.rs:
crates/core/src/topk.rs:
crates/core/src/index.rs:
crates/core/src/miner.rs:
crates/core/src/params.rs:
crates/core/src/rule.rs:

/root/repo/target/debug/deps/farmer_suite-549a2dfba30875e0.d: src/lib.rs

/root/repo/target/debug/deps/farmer_suite-549a2dfba30875e0: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/farmer_suite-59322b51cfa76875.d: src/lib.rs

/root/repo/target/debug/deps/libfarmer_suite-59322b51cfa76875.rlib: src/lib.rs

/root/repo/target/debug/deps/libfarmer_suite-59322b51cfa76875.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/debug/deps/farmer_support-535bc36dbdb1f57f.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/farmer_support-535bc36dbdb1f57f: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/check.rs:
crates/support/src/json.rs:
crates/support/src/rng.rs:
crates/support/src/thread.rs:

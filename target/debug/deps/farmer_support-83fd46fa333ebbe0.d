/root/repo/target/debug/deps/farmer_support-83fd46fa333ebbe0.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/libfarmer_support-83fd46fa333ebbe0.rlib: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

/root/repo/target/debug/deps/libfarmer_support-83fd46fa333ebbe0.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/check.rs:
crates/support/src/json.rs:
crates/support/src/rng.rs:
crates/support/src/thread.rs:

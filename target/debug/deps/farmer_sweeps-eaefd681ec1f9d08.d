/root/repo/target/debug/deps/farmer_sweeps-eaefd681ec1f9d08.d: crates/bench/benches/farmer_sweeps.rs

/root/repo/target/debug/deps/farmer_sweeps-eaefd681ec1f9d08: crates/bench/benches/farmer_sweeps.rs

crates/bench/benches/farmer_sweeps.rs:

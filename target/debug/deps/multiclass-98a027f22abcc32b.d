/root/repo/target/debug/deps/multiclass-98a027f22abcc32b.d: tests/multiclass.rs

/root/repo/target/debug/deps/multiclass-98a027f22abcc32b: tests/multiclass.rs

tests/multiclass.rs:

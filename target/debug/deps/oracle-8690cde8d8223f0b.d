/root/repo/target/debug/deps/oracle-8690cde8d8223f0b.d: crates/core/tests/oracle.rs

/root/repo/target/debug/deps/oracle-8690cde8d8223f0b: crates/core/tests/oracle.rs

crates/core/tests/oracle.rs:

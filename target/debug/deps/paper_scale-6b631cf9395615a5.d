/root/repo/target/debug/deps/paper_scale-6b631cf9395615a5.d: tests/paper_scale.rs

/root/repo/target/debug/deps/paper_scale-6b631cf9395615a5: tests/paper_scale.rs

tests/paper_scale.rs:

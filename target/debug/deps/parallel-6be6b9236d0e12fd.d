/root/repo/target/debug/deps/parallel-6be6b9236d0e12fd.d: crates/core/tests/parallel.rs

/root/repo/target/debug/deps/parallel-6be6b9236d0e12fd: crates/core/tests/parallel.rs

crates/core/tests/parallel.rs:

/root/repo/target/debug/deps/props-02f080f14c903452.d: crates/rowset/tests/props.rs

/root/repo/target/debug/deps/props-02f080f14c903452: crates/rowset/tests/props.rs

crates/rowset/tests/props.rs:

/root/repo/target/debug/deps/props-16065ef99489ab97.d: crates/dataset/tests/props.rs

/root/repo/target/debug/deps/props-16065ef99489ab97: crates/dataset/tests/props.rs

crates/dataset/tests/props.rs:

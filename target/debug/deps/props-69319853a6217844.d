/root/repo/target/debug/deps/props-69319853a6217844.d: crates/core/tests/props.rs

/root/repo/target/debug/deps/props-69319853a6217844: crates/core/tests/props.rs

crates/core/tests/props.rs:

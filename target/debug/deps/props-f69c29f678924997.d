/root/repo/target/debug/deps/props-f69c29f678924997.d: crates/baselines/tests/props.rs

/root/repo/target/debug/deps/props-f69c29f678924997: crates/baselines/tests/props.rs

crates/baselines/tests/props.rs:

/root/repo/target/debug/deps/rowset-46059f9f194200f1.d: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/debug/deps/rowset-46059f9f194200f1: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

crates/rowset/src/lib.rs:
crates/rowset/src/bitset.rs:
crates/rowset/src/idlist.rs:

/root/repo/target/debug/deps/rowset-828096bcf2cc37c1.d: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/debug/deps/librowset-828096bcf2cc37c1.rlib: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/debug/deps/librowset-828096bcf2cc37c1.rmeta: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

crates/rowset/src/lib.rs:
crates/rowset/src/bitset.rs:
crates/rowset/src/idlist.rs:

/root/repo/target/debug/deps/shrink-e88e9f0762ec32bf.d: crates/support/tests/shrink.rs

/root/repo/target/debug/deps/shrink-e88e9f0762ec32bf: crates/support/tests/shrink.rs

crates/support/tests/shrink.rs:

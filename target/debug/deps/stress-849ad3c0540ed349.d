/root/repo/target/debug/deps/stress-849ad3c0540ed349.d: tests/stress.rs

/root/repo/target/debug/deps/stress-849ad3c0540ed349: tests/stress.rs

tests/stress.rs:

/root/repo/target/debug/deps/substrates-ecfd6ad905ff0a8d.d: crates/bench/benches/substrates.rs

/root/repo/target/debug/deps/substrates-ecfd6ad905ff0a8d: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:

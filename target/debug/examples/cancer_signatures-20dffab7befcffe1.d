/root/repo/target/debug/examples/cancer_signatures-20dffab7befcffe1.d: examples/cancer_signatures.rs

/root/repo/target/debug/examples/cancer_signatures-20dffab7befcffe1: examples/cancer_signatures.rs

examples/cancer_signatures.rs:

/root/repo/target/debug/examples/classifier_pipeline-a1bcfe2cd16bafd0.d: examples/classifier_pipeline.rs

/root/repo/target/debug/examples/classifier_pipeline-a1bcfe2cd16bafd0: examples/classifier_pipeline.rs

examples/classifier_pipeline.rs:

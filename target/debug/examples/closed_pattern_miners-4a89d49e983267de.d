/root/repo/target/debug/examples/closed_pattern_miners-4a89d49e983267de.d: examples/closed_pattern_miners.rs

/root/repo/target/debug/examples/closed_pattern_miners-4a89d49e983267de: examples/closed_pattern_miners.rs

examples/closed_pattern_miners.rs:

/root/repo/target/debug/examples/quickstart-f5f20cfa4e0cec9b.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f5f20cfa4e0cec9b: examples/quickstart.rs

examples/quickstart.rs:

/root/repo/target/debug/examples/real_data_workflow-28c204a185af8151.d: examples/real_data_workflow.rs

/root/repo/target/debug/examples/real_data_workflow-28c204a185af8151: examples/real_data_workflow.rs

examples/real_data_workflow.rs:

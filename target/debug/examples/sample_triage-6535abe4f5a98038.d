/root/repo/target/debug/examples/sample_triage-6535abe4f5a98038.d: examples/sample_triage.rs

/root/repo/target/debug/examples/sample_triage-6535abe4f5a98038: examples/sample_triage.rs

examples/sample_triage.rs:

/root/repo/target/release/deps/experiments-57c4428bbd46cb23.d: crates/bench/src/bin/experiments/main.rs crates/bench/src/bin/experiments/ablation.rs crates/bench/src/bin/experiments/cobbler_exp.rs crates/bench/src/bin/experiments/fig10.rs crates/bench/src/bin/experiments/fig11.rs crates/bench/src/bin/experiments/scale.rs crates/bench/src/bin/experiments/table1.rs crates/bench/src/bin/experiments/table2.rs

/root/repo/target/release/deps/experiments-57c4428bbd46cb23: crates/bench/src/bin/experiments/main.rs crates/bench/src/bin/experiments/ablation.rs crates/bench/src/bin/experiments/cobbler_exp.rs crates/bench/src/bin/experiments/fig10.rs crates/bench/src/bin/experiments/fig11.rs crates/bench/src/bin/experiments/scale.rs crates/bench/src/bin/experiments/table1.rs crates/bench/src/bin/experiments/table2.rs

crates/bench/src/bin/experiments/main.rs:
crates/bench/src/bin/experiments/ablation.rs:
crates/bench/src/bin/experiments/cobbler_exp.rs:
crates/bench/src/bin/experiments/fig10.rs:
crates/bench/src/bin/experiments/fig11.rs:
crates/bench/src/bin/experiments/scale.rs:
crates/bench/src/bin/experiments/table1.rs:
crates/bench/src/bin/experiments/table2.rs:

/root/repo/target/release/deps/farmer-2068bdaefee24803.d: crates/cli/src/main.rs

/root/repo/target/release/deps/farmer-2068bdaefee24803: crates/cli/src/main.rs

crates/cli/src/main.rs:

/root/repo/target/release/deps/farmer_baselines-8c1c7bd2d82e0917.d: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

/root/repo/target/release/deps/libfarmer_baselines-8c1c7bd2d82e0917.rlib: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

/root/repo/target/release/deps/libfarmer_baselines-8c1c7bd2d82e0917.rmeta: crates/baselines/src/lib.rs crates/baselines/src/apriori.rs crates/baselines/src/charm.rs crates/baselines/src/closet.rs crates/baselines/src/column_e.rs crates/baselines/src/fptree.rs

crates/baselines/src/lib.rs:
crates/baselines/src/apriori.rs:
crates/baselines/src/charm.rs:
crates/baselines/src/closet.rs:
crates/baselines/src/column_e.rs:
crates/baselines/src/fptree.rs:

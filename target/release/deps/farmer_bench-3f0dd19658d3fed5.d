/root/repo/target/release/deps/farmer_bench-3f0dd19658d3fed5.d: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libfarmer_bench-3f0dd19658d3fed5.rlib: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

/root/repo/target/release/deps/libfarmer_bench-3f0dd19658d3fed5.rmeta: crates/bench/src/lib.rs crates/bench/src/report.rs crates/bench/src/workloads.rs

crates/bench/src/lib.rs:
crates/bench/src/report.rs:
crates/bench/src/workloads.rs:

/root/repo/target/release/deps/farmer_classify-a4cb22fd95c8817c.d: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/release/deps/libfarmer_classify-a4cb22fd95c8817c.rlib: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/release/deps/libfarmer_classify-a4cb22fd95c8817c.rmeta: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

crates/classify/src/lib.rs:
crates/classify/src/committee.rs:
crates/classify/src/cv.rs:
crates/classify/src/eval.rs:
crates/classify/src/pipeline.rs:
crates/classify/src/rules.rs:
crates/classify/src/svm.rs:

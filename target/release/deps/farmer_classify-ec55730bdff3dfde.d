/root/repo/target/release/deps/farmer_classify-ec55730bdff3dfde.d: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/release/deps/libfarmer_classify-ec55730bdff3dfde.rlib: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

/root/repo/target/release/deps/libfarmer_classify-ec55730bdff3dfde.rmeta: crates/classify/src/lib.rs crates/classify/src/committee.rs crates/classify/src/cv.rs crates/classify/src/eval.rs crates/classify/src/pipeline.rs crates/classify/src/rules.rs crates/classify/src/svm.rs

crates/classify/src/lib.rs:
crates/classify/src/committee.rs:
crates/classify/src/cv.rs:
crates/classify/src/eval.rs:
crates/classify/src/pipeline.rs:
crates/classify/src/rules.rs:
crates/classify/src/svm.rs:

/root/repo/target/release/deps/farmer_cli-711cdebe6d3df7f1.d: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

/root/repo/target/release/deps/libfarmer_cli-711cdebe6d3df7f1.rlib: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

/root/repo/target/release/deps/libfarmer_cli-711cdebe6d3df7f1.rmeta: crates/cli/src/lib.rs crates/cli/src/args.rs crates/cli/src/commands.rs crates/cli/src/output.rs

crates/cli/src/lib.rs:
crates/cli/src/args.rs:
crates/cli/src/commands.rs:
crates/cli/src/output.rs:

/root/repo/target/release/deps/farmer_core-c894407a202000c0.d: crates/core/src/lib.rs crates/core/src/carpenter.rs crates/core/src/cobbler.rs crates/core/src/cond/mod.rs crates/core/src/cond/bitset_engine.rs crates/core/src/cond/pointer_engine.rs crates/core/src/measures.rs crates/core/src/minelb.rs crates/core/src/naive.rs crates/core/src/topk.rs crates/core/src/index.rs crates/core/src/miner.rs crates/core/src/params.rs crates/core/src/rule.rs

/root/repo/target/release/deps/libfarmer_core-c894407a202000c0.rlib: crates/core/src/lib.rs crates/core/src/carpenter.rs crates/core/src/cobbler.rs crates/core/src/cond/mod.rs crates/core/src/cond/bitset_engine.rs crates/core/src/cond/pointer_engine.rs crates/core/src/measures.rs crates/core/src/minelb.rs crates/core/src/naive.rs crates/core/src/topk.rs crates/core/src/index.rs crates/core/src/miner.rs crates/core/src/params.rs crates/core/src/rule.rs

/root/repo/target/release/deps/libfarmer_core-c894407a202000c0.rmeta: crates/core/src/lib.rs crates/core/src/carpenter.rs crates/core/src/cobbler.rs crates/core/src/cond/mod.rs crates/core/src/cond/bitset_engine.rs crates/core/src/cond/pointer_engine.rs crates/core/src/measures.rs crates/core/src/minelb.rs crates/core/src/naive.rs crates/core/src/topk.rs crates/core/src/index.rs crates/core/src/miner.rs crates/core/src/params.rs crates/core/src/rule.rs

crates/core/src/lib.rs:
crates/core/src/carpenter.rs:
crates/core/src/cobbler.rs:
crates/core/src/cond/mod.rs:
crates/core/src/cond/bitset_engine.rs:
crates/core/src/cond/pointer_engine.rs:
crates/core/src/measures.rs:
crates/core/src/minelb.rs:
crates/core/src/naive.rs:
crates/core/src/topk.rs:
crates/core/src/index.rs:
crates/core/src/miner.rs:
crates/core/src/params.rs:
crates/core/src/rule.rs:

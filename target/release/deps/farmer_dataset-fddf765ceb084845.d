/root/repo/target/release/deps/farmer_dataset-fddf765ceb084845.d: crates/dataset/src/lib.rs crates/dataset/src/arff.rs crates/dataset/src/dataset.rs crates/dataset/src/discretize/mod.rs crates/dataset/src/discretize/chi_merge.rs crates/dataset/src/discretize/entropy.rs crates/dataset/src/discretize/equal_depth.rs crates/dataset/src/discretize/equal_width.rs crates/dataset/src/io.rs crates/dataset/src/matrix.rs crates/dataset/src/replicate.rs crates/dataset/src/select.rs crates/dataset/src/synth.rs crates/dataset/src/transposed.rs

/root/repo/target/release/deps/libfarmer_dataset-fddf765ceb084845.rlib: crates/dataset/src/lib.rs crates/dataset/src/arff.rs crates/dataset/src/dataset.rs crates/dataset/src/discretize/mod.rs crates/dataset/src/discretize/chi_merge.rs crates/dataset/src/discretize/entropy.rs crates/dataset/src/discretize/equal_depth.rs crates/dataset/src/discretize/equal_width.rs crates/dataset/src/io.rs crates/dataset/src/matrix.rs crates/dataset/src/replicate.rs crates/dataset/src/select.rs crates/dataset/src/synth.rs crates/dataset/src/transposed.rs

/root/repo/target/release/deps/libfarmer_dataset-fddf765ceb084845.rmeta: crates/dataset/src/lib.rs crates/dataset/src/arff.rs crates/dataset/src/dataset.rs crates/dataset/src/discretize/mod.rs crates/dataset/src/discretize/chi_merge.rs crates/dataset/src/discretize/entropy.rs crates/dataset/src/discretize/equal_depth.rs crates/dataset/src/discretize/equal_width.rs crates/dataset/src/io.rs crates/dataset/src/matrix.rs crates/dataset/src/replicate.rs crates/dataset/src/select.rs crates/dataset/src/synth.rs crates/dataset/src/transposed.rs

crates/dataset/src/lib.rs:
crates/dataset/src/arff.rs:
crates/dataset/src/dataset.rs:
crates/dataset/src/discretize/mod.rs:
crates/dataset/src/discretize/chi_merge.rs:
crates/dataset/src/discretize/entropy.rs:
crates/dataset/src/discretize/equal_depth.rs:
crates/dataset/src/discretize/equal_width.rs:
crates/dataset/src/io.rs:
crates/dataset/src/matrix.rs:
crates/dataset/src/replicate.rs:
crates/dataset/src/select.rs:
crates/dataset/src/synth.rs:
crates/dataset/src/transposed.rs:

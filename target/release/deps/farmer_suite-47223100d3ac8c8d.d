/root/repo/target/release/deps/farmer_suite-47223100d3ac8c8d.d: src/lib.rs

/root/repo/target/release/deps/libfarmer_suite-47223100d3ac8c8d.rlib: src/lib.rs

/root/repo/target/release/deps/libfarmer_suite-47223100d3ac8c8d.rmeta: src/lib.rs

src/lib.rs:

/root/repo/target/release/deps/farmer_support-d18d332e70771a52.d: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

/root/repo/target/release/deps/libfarmer_support-d18d332e70771a52.rlib: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

/root/repo/target/release/deps/libfarmer_support-d18d332e70771a52.rmeta: crates/support/src/lib.rs crates/support/src/bench.rs crates/support/src/check.rs crates/support/src/json.rs crates/support/src/rng.rs crates/support/src/thread.rs

crates/support/src/lib.rs:
crates/support/src/bench.rs:
crates/support/src/check.rs:
crates/support/src/json.rs:
crates/support/src/rng.rs:
crates/support/src/thread.rs:

/root/repo/target/release/deps/rowset-42a2141ee79cb292.d: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/release/deps/librowset-42a2141ee79cb292.rlib: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/release/deps/librowset-42a2141ee79cb292.rmeta: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

crates/rowset/src/lib.rs:
crates/rowset/src/bitset.rs:
crates/rowset/src/idlist.rs:

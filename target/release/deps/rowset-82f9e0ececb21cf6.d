/root/repo/target/release/deps/rowset-82f9e0ececb21cf6.d: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/release/deps/librowset-82f9e0ececb21cf6.rlib: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

/root/repo/target/release/deps/librowset-82f9e0ececb21cf6.rmeta: crates/rowset/src/lib.rs crates/rowset/src/bitset.rs crates/rowset/src/idlist.rs

crates/rowset/src/lib.rs:
crates/rowset/src/bitset.rs:
crates/rowset/src/idlist.rs:

/root/repo/target/release/deps/substrates-9a81ed3b2c8a89b7.d: crates/bench/benches/substrates.rs

/root/repo/target/release/deps/substrates-9a81ed3b2c8a89b7: crates/bench/benches/substrates.rs

crates/bench/benches/substrates.rs:

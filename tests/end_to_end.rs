//! Cross-crate integration tests: the full pipeline from synthesis
//! through discretization, mining, and classification, plus agreement
//! between every miner in the workspace.

use farmer_suite::baselines::charm::charm;
use farmer_suite::baselines::closet::closet;
use farmer_suite::baselines::column_e::column_e;
use farmer_suite::classify::pipeline::DiscretizedSplit;
use farmer_suite::classify::{CbaClassifier, IrgClassifier, SvmClassifier, SvmConfig};
use farmer_suite::core::carpenter::carpenter;
use farmer_suite::core::{Engine, Farmer, MiningParams};
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::synth::{PaperDataset, SynthConfig};
use farmer_suite::dataset::{replicate, Dataset};
use std::collections::HashSet;

fn small_analog() -> Dataset {
    let m = SynthConfig {
        n_rows: 30,
        n_genes: 120,
        n_class1: 15,
        n_signature: 40,
        clusters_per_class: 2,
        cluster_spread: 1.8,
        cluster_noise: 0.35,
        ..Default::default()
    }
    .generate();
    Discretizer::EqualDepth { buckets: 6 }.discretize(&m)
}

#[test]
fn full_mining_pipeline() {
    let d = small_analog();
    let params = MiningParams::new(1).min_sup(3).min_conf(0.8);
    let result = Farmer::new(params).mine(&d);
    assert!(!result.is_empty(), "signature data must yield IRGs");
    for g in &result.groups {
        // every reported measure is consistent with a recount from the data
        let support = d.rows_supporting(&g.upper);
        assert_eq!(support, g.support_set);
        let sup_p = support.iter().filter(|&r| d.label(r as u32) == 1).count();
        assert_eq!(sup_p, g.sup);
        assert_eq!(support.len() - sup_p, g.neg_sup);
        assert!(g.sup >= 3);
        assert!(g.confidence() >= 0.8);
        // the upper bound is closed
        assert_eq!(d.items_common_to(&support), g.upper);
        // lower bounds generate the same support set
        for low in &g.lower {
            assert_eq!(d.rows_supporting(low), g.support_set);
        }
    }
}

#[test]
fn engines_agree_on_realistic_data() {
    let d = small_analog();
    let params = MiningParams::new(1)
        .min_sup(3)
        .min_conf(0.5)
        .lower_bounds(false);
    let a = Farmer::new(params.clone())
        .with_engine(Engine::Bitset)
        .mine(&d);
    let b = Farmer::new(params)
        .with_engine(Engine::PointerList)
        .mine(&d);
    let canon = |r: &farmer_suite::core::MineResult| -> HashSet<Vec<u32>> {
        r.groups
            .iter()
            .map(|g| g.upper.as_slice().to_vec())
            .collect()
    };
    assert_eq!(canon(&a), canon(&b));
    assert_eq!(a.stats.nodes_visited, b.stats.nodes_visited);
}

#[test]
fn farmer_uppers_are_closed_patterns() {
    let d = small_analog();
    let min_sup = 4;
    let farmer = Farmer::new(MiningParams::new(1).min_sup(min_sup).lower_bounds(false)).mine(&d);
    let closed: HashSet<Vec<u32>> = carpenter(&d, min_sup)
        .patterns
        .iter()
        .map(|p| p.items.as_slice().to_vec())
        .collect();
    for g in &farmer.groups {
        assert!(
            closed.contains(g.upper.as_slice()),
            "IRG upper bound must be a closed pattern: {:?}",
            g.upper
        );
    }
}

#[test]
fn all_closed_miners_agree_on_analog() {
    let d = small_analog();
    for min_sup in [3usize, 5] {
        let canon_carp: HashSet<(Vec<u32>, usize)> = carpenter(&d, min_sup)
            .patterns
            .iter()
            .map(|p| (p.items.as_slice().to_vec(), p.support()))
            .collect();
        let canon_charm: HashSet<(Vec<u32>, usize)> = charm(&d, min_sup)
            .closed
            .iter()
            .map(|c| (c.items.as_slice().to_vec(), c.support()))
            .collect();
        let canon_closet: HashSet<(Vec<u32>, usize)> = closet(&d, min_sup)
            .closed
            .iter()
            .map(|c| (c.items.as_slice().to_vec(), c.support))
            .collect();
        assert_eq!(canon_carp, canon_charm, "min_sup={min_sup}");
        assert_eq!(canon_charm, canon_closet, "min_sup={min_sup}");
    }
}

#[test]
fn column_e_matches_farmer_on_analog() {
    let d = small_analog();
    let params = MiningParams::new(1)
        .min_sup(5)
        .min_conf(0.7)
        .lower_bounds(false);
    let farmer = Farmer::new(params.clone()).mine(&d);
    let cole = column_e(&d, &params, Some(200_000_000)).expect_done("within budget");
    let canon = |uppers: Vec<Vec<u32>>| -> HashSet<Vec<u32>> { uppers.into_iter().collect() };
    assert_eq!(
        canon(
            farmer
                .groups
                .iter()
                .map(|g| g.upper.as_slice().to_vec())
                .collect()
        ),
        canon(
            cole.groups
                .iter()
                .map(|g| g.upper.as_slice().to_vec())
                .collect()
        ),
    );
}

#[test]
fn replication_scales_counts_not_results() {
    let d = small_analog();
    let base = Farmer::new(MiningParams::new(1).min_sup(2).lower_bounds(false)).mine(&d);
    let rep = replicate::replicate_rows(&d, 3);
    let scaled = Farmer::new(MiningParams::new(1).min_sup(6).lower_bounds(false)).mine(&rep);
    // same upper bounds, tripled supports
    let canon = |r: &farmer_suite::core::MineResult| -> HashSet<(Vec<u32>, usize)> {
        r.groups
            .iter()
            .map(|g| (g.upper.as_slice().to_vec(), g.sup))
            .collect()
    };
    let base_scaled: HashSet<(Vec<u32>, usize)> = base
        .groups
        .iter()
        .map(|g| (g.upper.as_slice().to_vec(), g.sup * 3))
        .collect();
    assert_eq!(canon(&scaled), base_scaled);
}

#[test]
fn classification_beats_chance_on_separable_analog() {
    let m = PaperDataset::Leukemia.synth_config(0.01).generate();
    let (n_train, _) = PaperDataset::Leukemia.table2_split();
    let (tr, te) = m.stratified_split(n_train, 7);
    let split = DiscretizedSplit::fit(&tr, &te, &Discretizer::EntropyMdl);

    let majority = te
        .labels()
        .iter()
        .filter(|&&l| l == 1)
        .count()
        .max(te.labels().iter().filter(|&&l| l == 0).count()) as f64
        / te.n_rows() as f64;

    let irg = IrgClassifier::train(&split.train, 0.7, 0.8);
    let irg_acc = farmer_suite::classify::eval::accuracy(
        split.test.labels(),
        &irg.predict_dataset(&split.test),
    );
    assert!(irg_acc >= majority, "IRG {irg_acc} vs majority {majority}");

    let cba = CbaClassifier::train(&split.train, 0.7, 0.8);
    let cba_acc = farmer_suite::classify::eval::accuracy(
        split.test.labels(),
        &cba.predict_dataset(&split.test),
    );
    assert!(cba_acc >= 0.5, "CBA {cba_acc}");

    let svm = SvmClassifier::train(&tr, &SvmConfig::default());
    assert!(svm.score(&te) >= majority, "SVM {}", svm.score(&te));
}

#[test]
fn io_roundtrip_preserves_mining_results() {
    let d = small_analog();
    let dir = std::env::temp_dir().join("farmer-suite-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("analog.txt");
    farmer_suite::dataset::io::save_transactions(&d, &path).unwrap();
    let d2 = farmer_suite::dataset::io::load_transactions(&path).unwrap();

    let params = MiningParams::new(1).min_sup(3).lower_bounds(false);
    let a = Farmer::new(params.clone()).mine(&d);
    let b = Farmer::new(params).mine(&d2);
    // item ids may be permuted by interning order; compare via names
    let canon = |r: &farmer_suite::core::MineResult, d: &Dataset| -> HashSet<Vec<String>> {
        r.groups
            .iter()
            .map(|g| {
                let mut names: Vec<String> =
                    g.upper.iter().map(|i| d.item_name(i).to_string()).collect();
                names.sort();
                names
            })
            .collect()
    };
    assert_eq!(canon(&a, &d), canon(&b, &d2));
}

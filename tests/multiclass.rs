//! Multi-class behavior: the data model, miners, and rule-list
//! classifiers all support more than two class labels (mining is always
//! "target class vs rest").

use farmer_suite::classify::{CbaClassifier, IrgClassifier};
use farmer_suite::core::naive::mine_naive;
use farmer_suite::core::{Farmer, MiningParams, RuleGroup};
use farmer_suite::dataset::{Dataset, DatasetBuilder};

/// Three classes, each marked by its own item plus shared noise items.
fn three_class_dataset() -> Dataset {
    let mut b = DatasetBuilder::new(3);
    // class 0: marker 0; class 1: marker 1; class 2: marker 2
    b.add_row([0, 10, 11], 0);
    b.add_row([0, 11, 12], 0);
    b.add_row([0, 10, 12], 0);
    b.add_row([1, 10, 11], 1);
    b.add_row([1, 11, 12], 1);
    b.add_row([1, 10, 12], 1);
    b.add_row([2, 10, 11], 2);
    b.add_row([2, 11, 12], 2);
    b.add_row([2, 10, 12], 2);
    b.build()
}

fn canon(groups: &[RuleGroup]) -> Vec<(Vec<u32>, usize, usize)> {
    let mut v: Vec<_> = groups
        .iter()
        .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
        .collect();
    v.sort();
    v
}

#[test]
fn mining_each_class_matches_oracle() {
    let d = three_class_dataset();
    for class in 0..3u32 {
        let params = MiningParams::new(class)
            .min_sup(2)
            .min_conf(0.5)
            .lower_bounds(false);
        let farmer = Farmer::new(params.clone()).mine(&d);
        let naive = mine_naive(&d, &params);
        assert_eq!(canon(&farmer.groups), canon(&naive), "class {class}");
        // the class marker itself must be an IRG (perfect confidence)
        let marker = rowset::IdList::from_iter([class]);
        assert!(
            farmer.groups.iter().any(|g| g.upper == marker),
            "marker {class} missing: {:?}",
            farmer
                .groups
                .iter()
                .map(|g| g.upper.clone())
                .collect::<Vec<_>>()
        );
    }
}

#[test]
fn classifiers_handle_three_classes() {
    let d = three_class_dataset();
    let irg = IrgClassifier::train(&d, 0.6, 0.7);
    assert_eq!(irg.predict_dataset(&d), d.labels());
    let cba = CbaClassifier::train(&d, 0.6, 0.7);
    assert_eq!(cba.predict_dataset(&d), d.labels());
    // unseen combinations still route through the markers
    assert_eq!(irg.predict(&rowset::IdList::from_iter([2, 99])), 2);
}

#[test]
fn class_rows_partition() {
    let d = three_class_dataset();
    let total: usize = (0..3).map(|c| d.class_count(c)).sum();
    assert_eq!(total, d.n_rows());
    for c in 0..3u32 {
        assert_eq!(d.class_rows(c).len(), 3);
    }
}

//! Full paper-scale dimensions (24,481 genes on the BC analog) — proof
//! that nothing in the stack assumes the scaled-down defaults.
//!
//! Ignored by default because debug builds make it slow; run with
//!
//! ```text
//! cargo test --release --test paper_scale -- --ignored
//! ```

use farmer_suite::core::{Farmer, MiningParams};
use farmer_suite::dataset::discretize::Discretizer;
use farmer_suite::dataset::select::{select_top_genes, GeneMetric};
use farmer_suite::dataset::synth::PaperDataset;

#[test]
#[ignore = "paper-scale run; use --release -- --ignored"]
fn full_scale_breast_cancer_analog() {
    let p = PaperDataset::BreastCancer;
    let (rows, cols, _) = p.table1_shape();
    let matrix = p.synth_config(1.0).generate();
    assert_eq!(matrix.n_rows(), rows);
    assert_eq!(matrix.n_genes(), cols);

    // full column count straight through the miner
    let data = Discretizer::EqualDepth { buckets: 10 }.discretize(&matrix);
    assert_eq!(data.n_items(), cols * 10);
    let result = Farmer::new(MiningParams::new(1).min_sup(9).lower_bounds(false)).mine(&data);
    assert!(!result.stats.budget_exhausted);
    assert!(
        result.len() > 0,
        "paper-scale BC at minsup 9 must yield IRGs"
    );

    // and the practical route: feature-select to 2000 genes first
    let selected = select_top_genes(&matrix, GeneMetric::InfoGain, 2000);
    assert_eq!(selected.n_genes(), 2000);
    let data2 = Discretizer::EqualDepth { buckets: 10 }.discretize(&selected);
    let result2 = Farmer::new(MiningParams::new(1).min_sup(9).lower_bounds(false)).mine(&data2);
    assert!(result2.len() > 0);
}

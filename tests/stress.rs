//! Long randomized consistency sweep (ignored by default):
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use farmer_suite::baselines::charm::{charm, charm_diffsets};
use farmer_suite::baselines::closet::closet;
use farmer_suite::baselines::column_e::column_e;
use farmer_suite::core::carpenter::carpenter;
use farmer_suite::core::cobbler::{cobbler, SwitchPolicy};
use farmer_suite::core::naive::mine_naive;
use farmer_suite::core::{Engine, Farmer, MiningParams};
use farmer_suite::dataset::DatasetBuilder;
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use std::collections::HashSet;

/// 8-thread hammer on a deliberately tiny shared memo table: with 16
/// slots (the implementation floor is 8, so 16 stays) and hundreds of
/// closed sets, the probe windows overflow constantly — every insert
/// race, drop-on-collision, and stale-epoch path gets exercised. The
/// sequential memo-off run is the oracle: the parallel memo-on result
/// must contain exactly the same groups (none lost to a bogus hit, none
/// duplicated by a missed dedupe), and the memo counters must stay
/// self-consistent. Seeded, so failures replay.
#[test]
fn memo_hammer_vs_sequential_oracle() {
    let mut rng = StdRng::seed_from_u64(0xFA12_6B07);
    for trial in 0..25 {
        let n_rows = rng.gen_range(8..=16);
        let n_items = rng.gen_range(8..=20);
        let density = rng.gen_range(0.3..0.8);
        let mut b = DatasetBuilder::new(2);
        for _ in 0..n_rows {
            let items: Vec<u32> = (0..n_items as u32)
                .filter(|_| rng.gen_bool(density))
                .collect();
            b.add_row(items, u32::from(rng.gen_bool(0.5)));
        }
        let d = b.build();
        let params = MiningParams::new(rng.gen_range(0..2))
            .min_sup(rng.gen_range(1..=2))
            .min_conf([0.0, 0.6][trial % 2])
            .lower_bounds(false);

        let canon = |groups: &[farmer_suite::core::RuleGroup]| -> Vec<(Vec<u32>, usize, usize)> {
            let mut v: Vec<_> = groups
                .iter()
                .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
                .collect();
            v.sort();
            v
        };
        let oracle = Farmer::new(params.clone()).mine(&d);
        let want = canon(&oracle.groups);

        for engine in [Engine::Bitset, Engine::PointerList] {
            let got = Farmer::new(params.clone())
                .with_engine(engine)
                .with_parallelism(8)
                .with_memo_capacity(16)
                .mine(&d);
            let got_canon = canon(&got.groups);
            // no duplicate closed groups survive the merge
            let mut dedup = got_canon.clone();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                got_canon.len(),
                "trial {trial} {engine:?}: duplicate groups"
            );
            // no lost groups, none invented
            assert_eq!(got_canon, want, "trial {trial} {engine:?}");
            // memo counters self-consistent under the hammering
            let memo = &got.sched.memo;
            assert!(memo.capacity >= 16, "trial {trial}: memo was off");
            assert_eq!(
                memo.hits + memo.misses,
                memo.probes,
                "trial {trial} {engine:?}: counter drift {memo:?}"
            );
            assert!(
                memo.inserts <= memo.misses,
                "trial {trial} {engine:?}: more inserts than missed probes {memo:?}"
            );
        }
    }
}

#[test]
#[ignore = "long randomized sweep; use --release -- --ignored"]
fn randomized_cross_miner_consistency() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..150 {
        let n_rows = rng.gen_range(3..=12);
        let n_items = rng.gen_range(3..=14);
        let density = rng.gen_range(0.2..0.8);
        let mut b = DatasetBuilder::new(2);
        for _ in 0..n_rows {
            let items: Vec<u32> = (0..n_items as u32)
                .filter(|_| rng.gen_bool(density))
                .collect();
            b.add_row(items, u32::from(rng.gen_bool(0.5)));
        }
        let d = b.build();
        let min_sup = rng.gen_range(1..=4);

        // closed-set miners agree
        let canon_closed =
            |v: Vec<(Vec<u32>, usize)>| -> HashSet<(Vec<u32>, usize)> { v.into_iter().collect() };
        let carp = canon_closed(
            carpenter(&d, min_sup)
                .patterns
                .into_iter()
                .map(|p| {
                    let s = p.support();
                    (p.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let ch = canon_closed(
            charm(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| {
                    let s = c.support();
                    (c.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let dch = canon_closed(
            charm_diffsets(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| {
                    let s = c.support();
                    (c.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let cl = canon_closed(
            closet(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| (c.items.as_slice().to_vec(), c.support))
                .collect(),
        );
        let cob = canon_closed(
            cobbler(&d, min_sup, SwitchPolicy::Auto)
                .patterns
                .into_iter()
                .map(|p| (p.items.as_slice().to_vec(), p.support))
                .collect(),
        );
        assert_eq!(carp, ch, "trial {trial}");
        assert_eq!(ch, dch, "trial {trial}");
        assert_eq!(ch, cl, "trial {trial}");
        assert_eq!(ch, cob, "trial {trial}");

        // IRG miners agree with the oracle
        let params = MiningParams::new(rng.gen_range(0..2))
            .min_sup(min_sup.min(2))
            .min_conf([0.0, 0.5, 0.8][trial % 3])
            .min_chi([0.0, 1.0][trial % 2])
            .lower_bounds(false);
        let canon_groups =
            |groups: &[farmer_suite::core::RuleGroup]| -> HashSet<(Vec<u32>, usize, usize)> {
                groups
                    .iter()
                    .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
                    .collect()
            };
        let want = canon_groups(&mine_naive(&d, &params));
        for engine in [Engine::Bitset, Engine::PointerList] {
            let got = Farmer::new(params.clone()).with_engine(engine).mine(&d);
            assert_eq!(canon_groups(&got.groups), want, "trial {trial} {engine:?}");
        }
        let par = Farmer::new(params.clone()).with_parallelism(3).mine(&d);
        assert_eq!(canon_groups(&par.groups), want, "trial {trial} parallel");
        let cole = column_e(&d, &params, Some(50_000_000)).expect_done("small data");
        assert_eq!(canon_groups(&cole.groups), want, "trial {trial} column_e");
    }
}

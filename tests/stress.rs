//! Long randomized consistency sweep (ignored by default):
//!
//! ```text
//! cargo test --release --test stress -- --ignored
//! ```

use farmer_suite::baselines::charm::{charm, charm_diffsets};
use farmer_suite::baselines::closet::closet;
use farmer_suite::baselines::column_e::column_e;
use farmer_suite::core::carpenter::carpenter;
use farmer_suite::core::cobbler::{cobbler, SwitchPolicy};
use farmer_suite::core::naive::mine_naive;
use farmer_suite::core::{Engine, Farmer, MiningParams};
use farmer_suite::dataset::DatasetBuilder;
use farmer_support::rng::{Rng, SeedableRng, StdRng};
use std::collections::HashSet;

#[test]
#[ignore = "long randomized sweep; use --release -- --ignored"]
fn randomized_cross_miner_consistency() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for trial in 0..150 {
        let n_rows = rng.gen_range(3..=12);
        let n_items = rng.gen_range(3..=14);
        let density = rng.gen_range(0.2..0.8);
        let mut b = DatasetBuilder::new(2);
        for _ in 0..n_rows {
            let items: Vec<u32> = (0..n_items as u32)
                .filter(|_| rng.gen_bool(density))
                .collect();
            b.add_row(items, u32::from(rng.gen_bool(0.5)));
        }
        let d = b.build();
        let min_sup = rng.gen_range(1..=4);

        // closed-set miners agree
        let canon_closed =
            |v: Vec<(Vec<u32>, usize)>| -> HashSet<(Vec<u32>, usize)> { v.into_iter().collect() };
        let carp = canon_closed(
            carpenter(&d, min_sup)
                .patterns
                .into_iter()
                .map(|p| {
                    let s = p.support();
                    (p.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let ch = canon_closed(
            charm(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| {
                    let s = c.support();
                    (c.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let dch = canon_closed(
            charm_diffsets(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| {
                    let s = c.support();
                    (c.items.as_slice().to_vec(), s)
                })
                .collect(),
        );
        let cl = canon_closed(
            closet(&d, min_sup)
                .closed
                .into_iter()
                .map(|c| (c.items.as_slice().to_vec(), c.support))
                .collect(),
        );
        let cob = canon_closed(
            cobbler(&d, min_sup, SwitchPolicy::Auto)
                .patterns
                .into_iter()
                .map(|p| (p.items.as_slice().to_vec(), p.support))
                .collect(),
        );
        assert_eq!(carp, ch, "trial {trial}");
        assert_eq!(ch, dch, "trial {trial}");
        assert_eq!(ch, cl, "trial {trial}");
        assert_eq!(ch, cob, "trial {trial}");

        // IRG miners agree with the oracle
        let params = MiningParams::new(rng.gen_range(0..2))
            .min_sup(min_sup.min(2))
            .min_conf([0.0, 0.5, 0.8][trial % 3])
            .min_chi([0.0, 1.0][trial % 2])
            .lower_bounds(false);
        let canon_groups =
            |groups: &[farmer_suite::core::RuleGroup]| -> HashSet<(Vec<u32>, usize, usize)> {
                groups
                    .iter()
                    .map(|g| (g.upper.as_slice().to_vec(), g.sup, g.neg_sup))
                    .collect()
            };
        let want = canon_groups(&mine_naive(&d, &params));
        for engine in [Engine::Bitset, Engine::PointerList] {
            let got = Farmer::new(params.clone()).with_engine(engine).mine(&d);
            assert_eq!(canon_groups(&got.groups), want, "trial {trial} {engine:?}");
        }
        let par = Farmer::new(params.clone()).with_parallelism(3).mine(&d);
        assert_eq!(canon_groups(&par.groups), want, "trial {trial} parallel");
        let cole = column_e(&d, &params, Some(50_000_000)).expect_done("small data");
        assert_eq!(canon_groups(&cole.groups), want, "trial {trial} column_e");
    }
}
